//! Query AST: extended triple-pattern queries.
//!
//! A [`Query`] is a conjunction of extended triple patterns (paper §2) —
//! each slot a resource, token, literal, or variable — plus projection
//! variables and a result limit `k`. Queries are built programmatically
//! through [`QueryBuilder`] or parsed from text (see [`crate::parser`]).

use std::collections::HashMap;

use trinit_relax::{QPattern, QTerm, VarId};
use trinit_xkg::{TermId, TermKind, XkgStore};

/// A complete query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Conjunctive triple patterns.
    pub patterns: Vec<QPattern>,
    /// Projection variables (answers are deduplicated on these). Empty
    /// means "project every variable".
    pub projection: Vec<VarId>,
    /// Number of results requested.
    pub k: usize,
    /// Display names of variables, indexed by [`VarId`].
    pub var_names: Vec<String>,
    /// Terms that were written in the query but do not exist in the
    /// store's dictionary (they match nothing). Kept for display and for
    /// query suggestion.
    pub unknown_terms: Vec<(TermId, String)>,
}

impl Query {
    /// All distinct variables in pattern order of first occurrence.
    pub fn vars(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for p in &self.patterns {
            for v in p.vars() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// The effective projection: explicit projection, or all variables.
    pub fn effective_projection(&self) -> Vec<VarId> {
        if self.projection.is_empty() {
            self.vars()
        } else {
            self.projection.clone()
        }
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        self.var_names
            .get(v.0 as usize)
            .map(String::as_str)
            .unwrap_or("_fresh")
    }

    /// Renders a term, resolving unknown terms from the side table.
    pub fn display_term(&self, store: &XkgStore, t: QTerm) -> String {
        match t {
            QTerm::Var(v) => format!("?{}", self.var_name(v)),
            QTerm::Term(id) => {
                if let Some(text) = store.dict().resolve(id) {
                    if id.is_resource() {
                        text.to_string()
                    } else {
                        format!("'{text}'")
                    }
                } else if let Some((_, text)) =
                    self.unknown_terms.iter().find(|(u, _)| *u == id)
                {
                    format!("'{text}'?")
                } else {
                    format!("<{id:?}>")
                }
            }
        }
    }

    /// Renders one pattern.
    pub fn display_pattern(&self, store: &XkgStore, p: &QPattern) -> String {
        format!(
            "{} {} {}",
            self.display_term(store, p.s),
            self.display_term(store, p.p),
            self.display_term(store, p.o)
        )
    }

    /// Renders the whole query in paper-style notation.
    pub fn display(&self, store: &XkgStore) -> String {
        self.patterns
            .iter()
            .map(|p| self.display_pattern(store, p))
            .collect::<Vec<_>>()
            .join(" ; ")
    }
}

/// Incrementally builds a [`Query`] against a store's dictionary.
///
/// # Examples
///
/// ```
/// use trinit_xkg::XkgBuilder;
/// use trinit_query::QueryBuilder;
///
/// let mut b = XkgBuilder::new();
/// b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
/// let store = b.build();
///
/// let query = QueryBuilder::new(&store)
///     .pattern_v_r_r("x", "bornIn", "Ulm")
///     .project(&["x"])
///     .limit(10)
///     .build();
/// assert_eq!(query.patterns.len(), 1);
/// ```
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    store: &'a XkgStore,
    patterns: Vec<QPattern>,
    projection: Vec<VarId>,
    k: usize,
    var_ids: HashMap<String, VarId>,
    var_names: Vec<String>,
    unknown_terms: Vec<(TermId, String)>,
    unknown_counter: u32,
}

impl<'a> QueryBuilder<'a> {
    /// Creates a builder resolving terms against `store`.
    pub fn new(store: &'a XkgStore) -> QueryBuilder<'a> {
        QueryBuilder {
            store,
            patterns: Vec::new(),
            projection: Vec::new(),
            k: 10,
            var_ids: HashMap::new(),
            var_names: Vec::new(),
            unknown_terms: Vec::new(),
            unknown_counter: 0,
        }
    }

    /// Interns a variable by name.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = VarId(u16::try_from(self.var_names.len()).expect("too many variables"));
        self.var_ids.insert(name.to_string(), v);
        self.var_names.push(name.to_string());
        v
    }

    /// Resolves a term of `kind`; unknown strings get a synthetic id
    /// beyond the dictionary (matching nothing) and are recorded.
    pub fn term(&mut self, kind: TermKind, text: &str) -> TermId {
        if let Some(id) = self.store.dict().get(kind, text) {
            return id;
        }
        if let Some((id, _)) = self
            .unknown_terms
            .iter()
            .find(|(id, t)| id.kind() == kind && t == text)
        {
            return *id;
        }
        let index = self.store.dict().len_of(kind) as u32 + self.unknown_counter;
        self.unknown_counter += 1;
        let id = TermId::new(kind, index);
        self.unknown_terms.push((id, text.to_string()));
        id
    }

    /// Resolves a resource term.
    pub fn resource(&mut self, name: &str) -> TermId {
        self.term(TermKind::Resource, name)
    }

    /// Resolves a token term.
    pub fn token(&mut self, phrase: &str) -> TermId {
        self.term(TermKind::Token, phrase)
    }

    /// Resolves a literal term.
    pub fn literal(&mut self, value: &str) -> TermId {
        self.term(TermKind::Literal, value)
    }

    /// Adds a raw pattern.
    pub fn pattern(mut self, s: QTerm, p: QTerm, o: QTerm) -> Self {
        self.patterns.push(QPattern::new(s, p, o));
        self
    }

    /// Adds `?s predicate object` (variable, resource, resource).
    pub fn pattern_v_r_r(mut self, s: &str, p: &str, o: &str) -> Self {
        let sv = QTerm::Var(self.var(s));
        let pt = QTerm::Term(self.resource(p));
        let ot = QTerm::Term(self.resource(o));
        self.pattern(sv, pt, ot)
    }

    /// Adds `subject predicate ?o` (resource, resource, variable).
    pub fn pattern_r_r_v(mut self, s: &str, p: &str, o: &str) -> Self {
        let st = QTerm::Term(self.resource(s));
        let pt = QTerm::Term(self.resource(p));
        let ov = QTerm::Var(self.var(o));
        self.pattern(st, pt, ov)
    }

    /// Adds `?s predicate ?o` (variable, resource, variable).
    pub fn pattern_v_r_v(mut self, s: &str, p: &str, o: &str) -> Self {
        let sv = QTerm::Var(self.var(s));
        let pt = QTerm::Term(self.resource(p));
        let ov = QTerm::Var(self.var(o));
        self.pattern(sv, pt, ov)
    }

    /// Adds `subject 'token predicate' ?o`.
    pub fn pattern_r_t_v(mut self, s: &str, p: &str, o: &str) -> Self {
        let st = QTerm::Term(self.resource(s));
        let pt = QTerm::Term(self.token(p));
        let ov = QTerm::Var(self.var(o));
        self.pattern(st, pt, ov)
    }

    /// Sets projection variables.
    pub fn project(mut self, names: &[&str]) -> Self {
        self.projection = names.iter().map(|n| self.var(n)).collect();
        self
    }

    /// Sets the result limit.
    pub fn limit(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Finalizes the query.
    pub fn build(self) -> Query {
        Query {
            patterns: self.patterns,
            projection: self.projection,
            k: self.k,
            var_names: self.var_names,
            unknown_terms: self.unknown_terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
        b.add_kg_resources("Ulm", "locatedIn", "Germany");
        b.build()
    }

    #[test]
    fn builder_interns_variables_once() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .pattern_v_r_v("x", "locatedIn", "y")
            .build();
        assert_eq!(q.vars().len(), 2);
        assert_eq!(q.patterns[0].s, q.patterns[1].s);
    }

    #[test]
    fn unknown_terms_get_out_of_dict_ids() {
        let store = store();
        let mut b = QueryBuilder::new(&store);
        let id = b.resource("NoSuchEntity");
        assert!(store.dict().resolve(id).is_none());
        let q = b.build();
        assert_eq!(q.unknown_terms.len(), 1);
        assert_eq!(q.unknown_terms[0].1, "NoSuchEntity");
    }

    #[test]
    fn unknown_terms_are_interned_once() {
        let store = store();
        let mut b = QueryBuilder::new(&store);
        let a = b.resource("Ghost");
        let c = b.resource("Ghost");
        assert_eq!(a, c);
        assert_eq!(b.build().unknown_terms.len(), 1);
    }

    #[test]
    fn effective_projection_defaults_to_all_vars() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "bornIn", "y")
            .build();
        assert_eq!(q.effective_projection().len(), 2);
        let q2 = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "bornIn", "y")
            .project(&["x"])
            .build();
        assert_eq!(q2.effective_projection().len(), 1);
    }

    #[test]
    fn display_renders_paper_notation() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .build();
        assert_eq!(q.display(&store), "?x bornIn Ulm");
    }

    #[test]
    fn display_marks_unknown_terms() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Atlantis")
            .build();
        assert!(q.display(&store).contains("Atlantis"));
    }
}
