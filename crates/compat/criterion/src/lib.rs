//! Offline stand-in for the `criterion` crate (API subset).
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace vendors the surface its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `BenchmarkId::new`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one warmup call sizes the iteration
//! count to ~60 ms per sample, then `sample_size` samples are timed and
//! the median ns/iter is reported. Passing `--quick` (used by CI smoke
//! runs) collapses this to a single one-iteration sample. Each result is
//! printed as a human line plus a machine-readable
//! `CRITERION_JSON {...}` line for downstream tooling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for parity with criterion's hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    quick: bool,
    result_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, storing the median ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration.
        let t0 = Instant::now();
        black_box(routine());
        let per_iter = t0.elapsed().max(Duration::from_nanos(1));

        let (samples, iters) = if self.quick {
            (1usize, 1u64)
        } else {
            let target = Duration::from_millis(60);
            let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
            // Bound total wall time to ~2 s per benchmark.
            let budget = Duration::from_secs(2).as_nanos();
            let per_sample = per_iter.as_nanos() * u128::from(iters);
            let max_samples = (budget / per_sample.max(1)).clamp(1, self.samples as u128) as usize;
            (max_samples, iters)
        };

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            times.push(ns);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = Some(times[times.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_id: &str, samples: usize, quick: bool, mut f: F) {
    let mut b = Bencher {
        samples,
        quick,
        result_ns: None,
    };
    f(&mut b);
    match b.result_ns {
        Some(ns) => {
            println!("bench {full_id:<50} {ns:>14.0} ns/iter");
            println!("CRITERION_JSON {{\"id\":\"{full_id}\",\"ns_per_iter\":{ns:.1}}}");
        }
        None => println!("bench {full_id:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Reads CLI flags; `--quick` runs one iteration per benchmark (CI
    /// smoke mode). Other flags (`--bench`, filters) are ignored.
    pub fn configure_from_args() -> Criterion {
        let quick = std::env::args().any(|a| a == "--quick");
        Criterion { quick }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        run_one(&id.into().id, 10, self.quick, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.samples, self.criterion.quick, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut b = Bencher {
            samples: 3,
            quick: true,
            result_ns: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.result_ns.is_some());
        assert!(b.result_ns.unwrap() >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("topk", 5);
        assert_eq!(id.id, "topk/5");
        let from: BenchmarkId = "plain".into();
        assert_eq!(from.id, "plain");
    }
}
