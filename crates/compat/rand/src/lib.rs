//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace vendors the exact API surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! ranges, and [`Rng::gen_bool`]. The generator is deterministic for a
//! given seed (a requirement of `trinit-worldgen`), but its stream is
//! *not* bit-compatible with the real `rand::rngs::StdRng`.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produces the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.8's `Rng` extension trait).
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xorshift* over a SplitMix64-seeded
    /// state). Statistically adequate for synthetic data generation; not
    /// cryptographic and not stream-compatible with real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 scramble so small seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng { state: z ^ (z >> 31) | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); period 2^64 - 1 over nonzero states.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000))
            .count();
        assert!(same < 10);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..8);
            assert!((5..8).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_bound() {
        fn pick<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..4)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = pick(&mut rng);
        assert!(v < 4);
    }
}
