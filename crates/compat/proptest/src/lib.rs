//! Offline stand-in for the `proptest` crate (API subset).
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace vendors the exact surface its property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range and
//! tuple strategies, a character-class string strategy,
//! [`collection::vec`], [`option::of`], [`bool::ANY`], and the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases seeded
//! deterministically from the test's name, and assertion failures panic
//! like ordinary `assert!`. There is **no shrinking** and no failure
//! persistence — a failing case reports its generated values via the
//! assertion message only.

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    /// Per-test configuration (subset of the real type).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic random source for strategies (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from a test name, so each property test has
        /// a stable, reproducible case sequence.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// `&str` strategies are a regex subset: a single character class with
    /// a repetition count, e.g. `"[a-zA-Z0-9 ']{1,20}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]{min,max}` into (alphabet, min, max).
    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        fn bad(pattern: &str) -> ! {
            panic!("unsupported string strategy pattern: {pattern:?} (shim supports only `[class]{{min,max}}`)")
        }
        let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
        let (class, rest) = rest.split_once(']').unwrap_or_else(|| bad(pattern));
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| bad(pattern));
        let (min, max) = counts.split_once(',').unwrap_or_else(|| bad(pattern));
        let min: usize = min.trim().parse().unwrap_or_else(|_| bad(pattern));
        let max: usize = max.trim().parse().unwrap_or_else(|_| bad(pattern));
        assert!(min <= max, "bad repetition in {pattern:?}");
        let cs: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
                assert!(lo <= hi, "bad char range in {pattern:?}");
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                alphabet.push(cs[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
        (alphabet, min, max)
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0/0);
    impl_tuple_strategy!(S0/0, S1/1);
    impl_tuple_strategy!(S0/0, S1/1, S2/2);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size` (half-open,
    /// matching proptest's `Range<usize> -> SizeRange` conversion).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $var:ident in $strat:expr, $($rest:tt)*) => {
        let mut $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; mut $var:ident in $strat:expr) => {
        let mut $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
}

/// Asserts a condition inside a property test (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniformly chooses among alternative strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges_and_maps");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn string_class_pattern() {
        let mut rng = crate::test_runner::TestRng::for_test("string_class_pattern");
        let s: &'static str = "[a-c0-1 ']{2,5}";
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| "abc01 '".contains(c)), "{v:?}");
        }
    }

    #[test]
    fn oneof_union_covers_arms() {
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let s = prop_oneof![(0u32..1).prop_map(|_| "a"), (0u32..1).prop_map(|_| "b")];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                "a" => seen_a = true,
                _ => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn vec_and_option() {
        let mut rng = crate::test_runner::TestRng::for_test("vec_and_option");
        let s = crate::collection::vec(0u8..3, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
        let o = crate::option::of(0u8..3);
        let nones = (0..400).filter(|_| o.generate(&mut rng).is_none()).count();
        assert!(nones > 40 && nones < 200, "{nones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end, including `mut` bindings.
        #[test]
        fn macro_roundtrip(mut xs in crate::collection::vec(0u8..10, 0..6), flip in crate::bool::ANY) {
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.len() < 6);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 10).count(), 0, "values {:?}", xs);
        }
    }
}
