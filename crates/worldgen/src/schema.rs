//! The world schema: entity types and relations.
//!
//! The schema mirrors the paper's running examples (people, universities,
//! institutes, cities, countries, prizes, leagues) and deliberately encodes
//! the four failure modes of §1:
//!
//! * **Granularity mismatch** (user A): the KG stores `bornIn` at city
//!   granularity; users expect countries.
//! * **Direction mismatch** (user B): advisorship is stored as
//!   `hasStudent(advisor, student)`; users query `hasAdvisor`.
//! * **KG incompleteness** (user C): institute–university housing and
//!   guest lecturing exist in the world and in text, but never in the KG.
//! * **Missing vocabulary** (user D): prize motivations have no KG
//!   predicate at all.

/// Entity types of the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityType {
    /// A person (scientist, knowledge worker, ...).
    Person,
    /// A city.
    City,
    /// A country.
    Country,
    /// A university.
    University,
    /// A research institute (not itself a university).
    Institute,
    /// A prize or award.
    Prize,
    /// A research field / topic.
    Field,
    /// A collegiate league (e.g. the paper's IvyLeague).
    League,
    /// A company.
    Company,
}

impl EntityType {
    /// All entity types.
    pub const ALL: [EntityType; 9] = [
        EntityType::Person,
        EntityType::City,
        EntityType::Country,
        EntityType::University,
        EntityType::Institute,
        EntityType::Prize,
        EntityType::Field,
        EntityType::League,
        EntityType::Company,
    ];

    /// The KG class resource for this type (object of `type` triples).
    pub fn class_resource(self) -> &'static str {
        match self {
            EntityType::Person => "person",
            EntityType::City => "city",
            EntityType::Country => "country",
            EntityType::University => "university",
            EntityType::Institute => "institute",
            EntityType::Prize => "prize",
            EntityType::Field => "field",
            EntityType::League => "league",
            EntityType::Company => "company",
        }
    }
}

/// Relations of the synthetic world.
///
/// Each world fact instantiates one relation; whether and how the fact
/// surfaces in the KG and/or the text corpus is governed by the relation's
/// [`RelationSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relation {
    /// Person born in a city.
    BornIn,
    /// Person died in a city.
    DiedIn,
    /// Person born on a date (literal object).
    BornOn,
    /// City located in a country.
    CityInCountry,
    /// University located in a city.
    UnivInCity,
    /// Institute located in a city.
    InstInCity,
    /// Advisor has doctoral student (stored direction: advisor → student).
    HasStudent,
    /// Person officially affiliated with a university or institute.
    AffiliatedWith,
    /// University member of a collegiate league.
    MemberOfLeague,
    /// Person won a prize.
    WonPrize,
    /// Person won their prize *for* a field (no KG predicate exists).
    PrizeFor,
    /// Person gave guest lectures at a university (world/text only).
    LecturedAt,
    /// Institute housed on the campus of a university (world/text only).
    HousedIn,
    /// Person graduated from a university.
    GraduatedFrom,
    /// Person works for a company.
    WorksFor,
    /// Company headquartered in a city.
    HeadquarteredIn,
}

/// How a relation surfaces in the KG and the corpus.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// The relation described.
    pub relation: Relation,
    /// KG predicate label, or `None` if the KG vocabulary lacks this
    /// relation entirely (failure mode D).
    pub kg_predicate: Option<&'static str>,
    /// Probability that a world fact of this relation is asserted in the
    /// KG (conditional on the predicate existing). Models incompleteness.
    pub kg_coverage: f64,
    /// Sentence templates rendering the fact; `{s}` and `{o}` are replaced
    /// by surface forms. The verbal phrase between them is what Open IE
    /// should recover as the token predicate.
    pub templates: &'static [&'static str],
    /// Relative frequency with which the corpus talks about this relation.
    pub text_affinity: f64,
}

impl Relation {
    /// All relations.
    pub const ALL: [Relation; 16] = [
        Relation::BornIn,
        Relation::DiedIn,
        Relation::BornOn,
        Relation::CityInCountry,
        Relation::UnivInCity,
        Relation::InstInCity,
        Relation::HasStudent,
        Relation::AffiliatedWith,
        Relation::MemberOfLeague,
        Relation::WonPrize,
        Relation::PrizeFor,
        Relation::LecturedAt,
        Relation::HousedIn,
        Relation::GraduatedFrom,
        Relation::WorksFor,
        Relation::HeadquarteredIn,
    ];

    /// The static spec for this relation.
    pub fn spec(self) -> RelationSpec {
        match self {
            Relation::BornIn => RelationSpec {
                relation: self,
                kg_predicate: Some("bornIn"),
                kg_coverage: 0.92,
                templates: &[
                    "{s} was born in {o}",
                    "{s} was born in the town of {o}",
                ],
                text_affinity: 0.6,
            },
            Relation::DiedIn => RelationSpec {
                relation: self,
                kg_predicate: Some("diedIn"),
                kg_coverage: 0.85,
                templates: &["{s} died in {o}", "{s} passed away in {o}"],
                text_affinity: 0.3,
            },
            Relation::BornOn => RelationSpec {
                relation: self,
                kg_predicate: Some("bornOn"),
                kg_coverage: 0.9,
                templates: &["{s} was born on {o}"],
                text_affinity: 0.2,
            },
            Relation::CityInCountry => RelationSpec {
                relation: self,
                kg_predicate: Some("locatedIn"),
                kg_coverage: 0.97,
                templates: &["{s} lies in {o}", "{s} is a city in {o}"],
                text_affinity: 0.3,
            },
            Relation::UnivInCity => RelationSpec {
                relation: self,
                kg_predicate: Some("locatedIn"),
                kg_coverage: 0.93,
                templates: &["{s} is located in {o}"],
                text_affinity: 0.3,
            },
            Relation::InstInCity => RelationSpec {
                relation: self,
                kg_predicate: Some("locatedIn"),
                kg_coverage: 0.85,
                templates: &["{s} is located in {o}"],
                text_affinity: 0.3,
            },
            Relation::HasStudent => RelationSpec {
                relation: self,
                kg_predicate: Some("hasStudent"),
                kg_coverage: 0.8,
                templates: &[
                    "{s} supervised {o}",
                    "{o} studied under {s}",
                    "{o} was a doctoral student of {s}",
                ],
                text_affinity: 0.7,
            },
            Relation::AffiliatedWith => RelationSpec {
                relation: self,
                kg_predicate: Some("affiliation"),
                kg_coverage: 0.78,
                templates: &[
                    "{s} was affiliated with {o}",
                    "{s} worked at {o}",
                ],
                text_affinity: 0.8,
            },
            Relation::MemberOfLeague => RelationSpec {
                relation: self,
                kg_predicate: Some("member"),
                kg_coverage: 0.95,
                templates: &["{s} is a member of the {o}"],
                text_affinity: 0.3,
            },
            Relation::WonPrize => RelationSpec {
                relation: self,
                kg_predicate: Some("wonPrize"),
                kg_coverage: 0.88,
                templates: &["{s} won the {o}", "{s} received the {o}"],
                text_affinity: 0.8,
            },
            Relation::PrizeFor => RelationSpec {
                relation: self,
                // Failure mode D: no KG predicate for prize motivations.
                kg_predicate: None,
                kg_coverage: 0.0,
                templates: &[
                    "{s} won the prize for his discovery of {o}",
                    "{s} was honored for {o}",
                    "{s} received the award for work on {o}",
                ],
                text_affinity: 1.0,
            },
            Relation::LecturedAt => RelationSpec {
                relation: self,
                // Failure mode C: guest lecturing is below KG granularity.
                kg_predicate: None,
                kg_coverage: 0.0,
                templates: &[
                    "{s} lectured at {o}",
                    "{s} gave lectures at {o}",
                    "{s} taught at {o}",
                ],
                text_affinity: 1.0,
            },
            Relation::HousedIn => RelationSpec {
                relation: self,
                // Failure mode C: housing is below KG granularity.
                kg_predicate: None,
                kg_coverage: 0.0,
                templates: &[
                    "{s} is housed in {o}",
                    "{s} was housed on the campus of {o}",
                ],
                text_affinity: 1.0,
            },
            Relation::GraduatedFrom => RelationSpec {
                relation: self,
                kg_predicate: Some("graduatedFrom"),
                kg_coverage: 0.75,
                templates: &["{s} graduated from {o}"],
                text_affinity: 0.5,
            },
            Relation::WorksFor => RelationSpec {
                relation: self,
                kg_predicate: Some("worksFor"),
                kg_coverage: 0.7,
                templates: &["{s} works for {o}", "{s} is employed by {o}"],
                text_affinity: 0.6,
            },
            Relation::HeadquarteredIn => RelationSpec {
                relation: self,
                kg_predicate: Some("headquarteredIn"),
                kg_coverage: 0.85,
                templates: &["{s} is headquartered in {o}"],
                text_affinity: 0.4,
            },
        }
    }

    /// True if the object of this relation is a literal (not an entity).
    pub fn literal_object(self) -> bool {
        matches!(self, Relation::BornOn)
    }
}

/// The KG predicate used for `type` triples.
pub const TYPE_PREDICATE: &str = "type";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_relation_has_a_spec() {
        for rel in Relation::ALL {
            let spec = rel.spec();
            assert_eq!(spec.relation, rel);
            assert!(!spec.templates.is_empty());
            assert!(spec.text_affinity > 0.0);
        }
    }

    #[test]
    fn kg_gaps_are_exactly_the_paper_failure_modes() {
        let missing: Vec<Relation> = Relation::ALL
            .into_iter()
            .filter(|r| r.spec().kg_predicate.is_none())
            .collect();
        assert_eq!(
            missing,
            vec![Relation::PrizeFor, Relation::LecturedAt, Relation::HousedIn]
        );
    }

    #[test]
    fn coverage_is_a_probability() {
        for rel in Relation::ALL {
            let c = rel.spec().kg_coverage;
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn templates_mention_both_slots() {
        for rel in Relation::ALL {
            for t in rel.spec().templates {
                assert!(t.contains("{s}"), "{rel:?}: {t}");
                assert!(t.contains("{o}"), "{rel:?}: {t}");
            }
        }
    }

    #[test]
    fn only_born_on_has_literal_objects() {
        for rel in Relation::ALL {
            assert_eq!(rel.literal_object(), rel == Relation::BornOn);
        }
    }

    #[test]
    fn class_resources_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in EntityType::ALL {
            assert!(seen.insert(t.class_resource()));
        }
    }
}
