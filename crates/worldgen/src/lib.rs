//! # trinit-worldgen — synthetic world, KG, and corpus
//!
//! Stand-in for the paper's data assets (Yago2s as KG, ClueWeb'09+FACC1 as
//! text source). A seeded ground-truth [`World`] is projected into a
//! deliberately incomplete KG ([`kg::project_kg`]) and rendered into a raw
//! text corpus ([`corpus::generate_corpus`]); evaluation judges answers
//! against the full world.
//!
//! See `DESIGN.md` §1 for why this substitution preserves the phenomena
//! the paper studies (vocabulary mismatch, granularity mismatch, KG
//! incompleteness, missing predicates).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod kg;
pub mod names;
pub mod schema;
pub mod world;
pub mod zipf;

pub use corpus::{alias_catalog, AliasEntry, CorpusConfig, Document};
pub use kg::{project_kg, KgConfig, KgFact, KgProjection};
pub use schema::{EntityType, Relation, RelationSpec, TYPE_PREDICATE};
pub use world::{Entity, EntityId, Obj, World, WorldConfig, WorldFact};
pub use zipf::Zipf;
