//! Deterministic synthetic name generation.
//!
//! Produces pronounceable, unique names for every entity type, plus the
//! alias surface forms (surname only, honorifics, abbreviations) that make
//! entity linking non-trivial: distinct people can share a surname, so the
//! NED component must use context and popularity priors exactly as the
//! paper's pipeline (AIDA/FACC1) does.

use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kl", "l", "m", "n",
    "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ae", "ia", "ei", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "th", "ck", "nd", "rt"];

/// Generates a pronounceable lowercase syllable sequence.
pub(crate) fn syllables<R: Rng + ?Sized>(rng: &mut R, count: usize) -> String {
    let mut out = String::new();
    for i in 0..count {
        out.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        out.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        if i + 1 == count {
            out.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    out
}

/// Capitalizes the first letter of a word.
pub(crate) fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// A generated personal name with its surface forms.
#[derive(Debug, Clone)]
pub struct PersonName {
    /// Given name, e.g. `Brusa`.
    pub given: String,
    /// Family name, e.g. `Klinberg`.
    pub family: String,
}

impl PersonName {
    /// Full display name (`given family`).
    pub fn full(&self) -> String {
        format!("{} {}", self.given, self.family)
    }

    /// Canonical KG resource identifier (CamelCase, no spaces).
    pub fn resource(&self) -> String {
        format!("{}{}", self.given, self.family)
    }

    /// Alias surface forms used in text: full name, family name alone,
    /// and an honorific form (`Prof. Family`).
    pub fn aliases(&self) -> Vec<String> {
        vec![
            self.full(),
            self.family.clone(),
            format!("Prof. {}", self.family),
        ]
    }
}

/// Deterministic name factory.
#[derive(Debug)]
pub struct NameGen {
    used: std::collections::HashSet<String>,
    families: Vec<String>,
}

impl NameGen {
    /// Creates an empty factory.
    pub fn new() -> NameGen {
        NameGen {
            used: std::collections::HashSet::new(),
            families: Vec::new(),
        }
    }

    /// Draws until the closure produces an unused name, then records it.
    fn unique<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        mut gen: impl FnMut(&mut R) -> String,
    ) -> String {
        loop {
            let candidate = gen(rng);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// Generates a personal name. Family names are drawn from a growing
    /// but reused pool, so surname collisions are guaranteed once a world
    /// has more than a dozen people — which is what makes entity linking
    /// ("Prof. Kleiner") genuinely ambiguous.
    pub fn person<R: Rng + ?Sized>(&mut self, rng: &mut R) -> PersonName {
        let family = if self.families.len() >= 12 && rng.gen_bool(0.5) {
            self.families[rng.gen_range(0..self.families.len())].clone()
        } else {
            let f = capitalize(&syllables(rng, 2));
            self.families.push(f.clone());
            f
        };
        let given = self.unique(rng, |r| capitalize(&syllables(r, 2)));
        PersonName { given, family }
    }

    /// Generates a city name, e.g. `Velmora`.
    pub fn city<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.unique(rng, |r| capitalize(&syllables(r, 3)))
    }

    /// Generates a country name, e.g. `Trastenia`.
    pub fn country<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.unique(rng, |r| format!("{}ia", capitalize(&syllables(r, 2))))
    }

    /// Generates a university name, e.g. `Velmora University`.
    pub fn university<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.unique(rng, |r| {
            format!("{} University", capitalize(&syllables(r, 2)))
        })
    }

    /// Generates a research-institute name.
    pub fn institute<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.unique(rng, |r| {
            format!("Institute for {} Studies", capitalize(&syllables(r, 2)))
        })
    }

    /// Generates a prize name, e.g. `Drona Prize`.
    pub fn prize<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.unique(rng, |r| format!("{} Prize", capitalize(&syllables(r, 2))))
    }

    /// Generates a research-field name, e.g. `quantum flane theory`.
    pub fn field<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        let kinds = ["theory", "dynamics", "analysis", "geometry", "mechanics"];
        self.unique(rng, |r| {
            format!(
                "{} {}",
                syllables(r, 2),
                kinds[r.gen_range(0..kinds.len())]
            )
        })
    }

    /// Generates a league name, e.g. `Kloue League`.
    pub fn league<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.unique(rng, |r| format!("{} League", capitalize(&syllables(r, 1))))
    }

    /// Generates an ISO-ish date literal between 1800 and 1999.
    pub fn date<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        format!(
            "{:04}-{:02}-{:02}",
            rng.gen_range(1800..2000),
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        )
    }
}

impl Default for NameGen {
    fn default() -> Self {
        NameGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn names_are_deterministic_per_seed() {
        let mut a = NameGen::new();
        let mut b = NameGen::new();
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(a.person(&mut ra).full(), b.person(&mut rb).full());
            assert_eq!(a.city(&mut ra), b.city(&mut rb));
        }
    }

    #[test]
    fn given_names_are_unique() {
        let mut g = NameGen::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let p = g.person(&mut rng);
            assert!(seen.insert(p.given.clone()), "duplicate given name");
        }
    }

    #[test]
    fn surnames_collide_eventually() {
        let mut g = NameGen::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut families = std::collections::HashSet::new();
        let mut collisions = 0;
        for _ in 0..800 {
            if !families.insert(g.person(&mut rng).family) {
                collisions += 1;
            }
        }
        assert!(collisions > 0, "expected shared surnames for NED ambiguity");
    }

    #[test]
    fn aliases_include_honorific() {
        let p = PersonName {
            given: "Brusa".into(),
            family: "Klinberg".into(),
        };
        assert_eq!(p.resource(), "BrusaKlinberg");
        assert!(p.aliases().contains(&"Prof. Klinberg".to_string()));
    }

    #[test]
    fn dates_are_plausible() {
        let mut g = NameGen::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let d = g.date(&mut rng);
            assert_eq!(d.len(), 10);
            assert_eq!(&d[4..5], "-");
        }
    }
}
