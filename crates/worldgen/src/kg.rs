//! Incomplete-KG projection.
//!
//! Projects the ground-truth [`World`] into a curated KG the way real KGs
//! relate to reality (paper §1): only relations in the KG vocabulary
//! appear, each with per-relation coverage < 1; advisorship keeps only the
//! `hasStudent` direction; `type` triples are complete (ontological
//! knowledge is cheap). Facts dropped here can still surface in the text
//! corpus — that gap is exactly what the XKG extension recovers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::TYPE_PREDICATE;
use crate::world::{Obj, World};

/// A sampled KG fact, in resource-string form ready for store loading.
#[derive(Debug, Clone, PartialEq)]
pub struct KgFact {
    /// Subject resource.
    pub subject: String,
    /// Predicate resource.
    pub predicate: String,
    /// Object resource or literal value.
    pub object: String,
    /// True if the object is a literal rather than a resource.
    pub object_is_literal: bool,
}

/// The result of projecting a world into an incomplete KG.
#[derive(Debug)]
pub struct KgProjection {
    /// The sampled KG facts (relation facts + type triples).
    pub facts: Vec<KgFact>,
    /// For each index into `world.facts`: whether that world fact made it
    /// into the KG. Facts of relations outside the KG vocabulary are
    /// always `false`.
    pub included: Vec<bool>,
}

/// Knobs for the KG sampler.
#[derive(Debug, Clone)]
pub struct KgConfig {
    /// RNG seed (independent of the world seed).
    pub seed: u64,
    /// Multiplier applied to every relation's default coverage, clamped to
    /// `[0, 1]`. `1.0` reproduces the schema defaults; `0.0` yields a KG
    /// with only type triples.
    pub coverage_scale: f64,
}

impl Default for KgConfig {
    fn default() -> Self {
        KgConfig {
            seed: 0xD1C7,
            coverage_scale: 1.0,
        }
    }
}

/// Projects `world` into an incomplete KG.
pub fn project_kg(world: &World, cfg: &KgConfig) -> KgProjection {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut facts = Vec::new();
    let mut included = Vec::with_capacity(world.facts.len());

    // Type triples: complete ontological knowledge.
    for e in &world.entities {
        facts.push(KgFact {
            subject: e.resource.clone(),
            predicate: TYPE_PREDICATE.to_string(),
            object: e.etype.class_resource().to_string(),
            object_is_literal: false,
        });
    }

    for f in &world.facts {
        let spec = f.relation.spec();
        let Some(pred) = spec.kg_predicate else {
            included.push(false);
            continue;
        };
        let coverage = (spec.kg_coverage * cfg.coverage_scale).clamp(0.0, 1.0);
        if !rng.gen_bool(coverage) {
            included.push(false);
            continue;
        }
        included.push(true);
        let (object, object_is_literal) = match &f.object {
            Obj::Entity(id) => (world.entity(*id).resource.clone(), false),
            Obj::Literal(v) => (v.clone(), true),
        };
        facts.push(KgFact {
            subject: world.entity(f.subject).resource.clone(),
            predicate: pred.to_string(),
            object,
            object_is_literal,
        });
    }

    debug_assert_eq!(included.len(), world.facts.len());
    KgProjection { facts, included }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn sample() -> (World, KgProjection) {
        let world = World::generate(WorldConfig::tiny(21));
        let kg = project_kg(&world, &KgConfig::default());
        (world, kg)
    }

    #[test]
    fn type_triples_are_complete() {
        let (world, kg) = sample();
        let type_count = kg
            .facts
            .iter()
            .filter(|f| f.predicate == TYPE_PREDICATE)
            .count();
        assert_eq!(type_count, world.entities.len());
    }

    #[test]
    fn vocabulary_gaps_never_appear() {
        let (_, kg) = sample();
        for f in &kg.facts {
            assert_ne!(f.predicate, "lecturedAt");
            assert_ne!(f.predicate, "housedIn");
            assert_ne!(f.predicate, "prizeFor");
        }
    }

    #[test]
    fn coverage_drops_some_facts() {
        let (world, kg) = sample();
        let eligible = world
            .facts
            .iter()
            .filter(|f| f.relation.spec().kg_predicate.is_some())
            .count();
        let kept = kg.included.iter().filter(|&&b| b).count();
        assert!(kept > 0);
        assert!(kept < eligible, "incompleteness requires dropped facts");
    }

    #[test]
    fn zero_coverage_keeps_only_types() {
        let world = World::generate(WorldConfig::tiny(3));
        let kg = project_kg(
            &world,
            &KgConfig {
                seed: 1,
                coverage_scale: 0.0,
            },
        );
        assert!(kg.facts.iter().all(|f| f.predicate == TYPE_PREDICATE));
        assert!(kg.included.iter().all(|&b| !b));
    }

    #[test]
    fn projection_is_deterministic() {
        let world = World::generate(WorldConfig::tiny(5));
        let a = project_kg(&world, &KgConfig::default());
        let b = project_kg(&world, &KgConfig::default());
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn literal_objects_are_flagged() {
        let (_, kg) = sample();
        for f in &kg.facts {
            if f.predicate == "bornOn" {
                assert!(f.object_is_literal);
                assert!(f.object.contains('-'));
            }
        }
    }

    #[test]
    fn advisorship_kept_in_stored_direction_only() {
        let (_, kg) = sample();
        assert!(kg.facts.iter().all(|f| f.predicate != "hasAdvisor"));
    }
}
