//! Ground-truth world generation.
//!
//! A [`World`] is the complete, *true* state of affairs: every entity and
//! every fact. The KG sampler ([`crate::kg`]) projects a deliberately
//! incomplete KG out of it, and the corpus generator ([`crate::corpus`])
//! renders (especially the KG-missing) facts into text. Because the world
//! is fully known, evaluation can compute exact relevance judgments.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::names::NameGen;
use crate::schema::{EntityType, Relation};
use crate::zipf::Zipf;

/// Dense identifier of a world entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The entity id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A world entity with its canonical resource name and surface forms.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Identifier, dense over the whole world.
    pub id: EntityId,
    /// Entity type.
    pub etype: EntityType,
    /// Human-readable display name, e.g. `Brusa Klinberg`.
    pub name: String,
    /// Canonical KG resource identifier, e.g. `BrusaKlinberg`.
    pub resource: String,
    /// Alias surface forms the corpus may use to mention the entity.
    pub aliases: Vec<String>,
    /// Relative mention popularity (higher = mentioned more in text).
    pub popularity: f64,
}

/// The object slot of a world fact.
#[derive(Debug, Clone, PartialEq)]
pub enum Obj {
    /// Another entity.
    Entity(EntityId),
    /// A literal value (e.g. a date).
    Literal(String),
}

/// A single ground-truth fact.
#[derive(Debug, Clone)]
pub struct WorldFact {
    /// Subject entity.
    pub subject: EntityId,
    /// Relation.
    pub relation: Relation,
    /// Object entity or literal.
    pub object: Obj,
}

/// Size/shape knobs for world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; identical configs generate identical worlds.
    pub seed: u64,
    /// Number of people.
    pub people: usize,
    /// Number of cities.
    pub cities: usize,
    /// Number of countries.
    pub countries: usize,
    /// Number of universities.
    pub universities: usize,
    /// Number of research institutes.
    pub institutes: usize,
    /// Number of prizes.
    pub prizes: usize,
    /// Number of research fields.
    pub fields: usize,
    /// Number of collegiate leagues.
    pub leagues: usize,
    /// Number of companies.
    pub companies: usize,
    /// Zipf exponent for person popularity.
    pub zipf_exponent: f64,
}

impl WorldConfig {
    /// A tiny world for unit tests (tens of entities).
    pub fn tiny(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            people: 30,
            cities: 8,
            countries: 3,
            universities: 5,
            institutes: 3,
            prizes: 2,
            fields: 6,
            leagues: 2,
            companies: 4,
            zipf_exponent: 1.0,
        }
    }

    /// The default demo-scale world (thousands of entities), a ~1:1000
    /// scale-down of the paper's Yago2s+ClueWeb setting.
    pub fn demo(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            people: 2000,
            cities: 200,
            countries: 40,
            universities: 120,
            institutes: 30,
            prizes: 12,
            fields: 80,
            leagues: 6,
            companies: 60,
            zipf_exponent: 1.0,
        }
    }

    /// A ~1M-triple world (~190k people, ~5.5 facts each) for scale
    /// benchmarks. The demo shape scaled ~95x, with a slightly steeper
    /// Zipf skew so hot entities dominate posting lists the way they do
    /// in web-extracted data.
    pub fn million(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            people: 190_000,
            cities: 2_400,
            countries: 150,
            universities: 3_000,
            institutes: 600,
            prizes: 40,
            fields: 400,
            leagues: 12,
            companies: 1_500,
            zipf_exponent: 1.1,
        }
    }

    /// Scales all entity counts by `factor` (minimum 1 each).
    pub fn scaled(mut self, factor: f64) -> WorldConfig {
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        self.people = scale(self.people);
        self.cities = scale(self.cities);
        self.countries = scale(self.countries);
        self.universities = scale(self.universities);
        self.institutes = scale(self.institutes);
        self.prizes = scale(self.prizes);
        self.fields = scale(self.fields);
        self.leagues = scale(self.leagues);
        self.companies = scale(self.companies);
        self
    }
}

/// The complete ground-truth world.
#[derive(Debug)]
pub struct World {
    /// All entities, indexed by [`EntityId`].
    pub entities: Vec<Entity>,
    /// All ground-truth facts.
    pub facts: Vec<WorldFact>,
    /// The config that generated this world.
    pub config: WorldConfig,
    by_type: Vec<(EntityType, Vec<EntityId>)>,
}

impl World {
    /// Generates a world deterministically from `config`.
    pub fn generate(config: WorldConfig) -> World {
        Generator::new(config).run()
    }

    /// The entity with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.idx()]
    }

    /// All entity ids of a type, in creation order.
    pub fn of_type(&self, etype: EntityType) -> &[EntityId] {
        self.by_type
            .iter()
            .find(|(t, _)| *t == etype)
            .map(|(_, ids)| ids.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates ground-truth facts of one relation.
    pub fn facts_of(&self, relation: Relation) -> impl Iterator<Item = &WorldFact> {
        self.facts.iter().filter(move |f| f.relation == relation)
    }

    /// Finds an entity by canonical resource name.
    pub fn find_resource(&self, resource: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.resource == resource)
    }
}

struct Generator {
    config: WorldConfig,
    rng: StdRng,
    names: NameGen,
    entities: Vec<Entity>,
    facts: Vec<WorldFact>,
}

impl Generator {
    fn new(config: WorldConfig) -> Generator {
        let rng = StdRng::seed_from_u64(config.seed);
        Generator {
            config,
            rng,
            names: NameGen::new(),
            entities: Vec::new(),
            facts: Vec::new(),
        }
    }

    fn push_entity(&mut self, etype: EntityType, name: String, aliases: Vec<String>) -> EntityId {
        let id = EntityId(u32::try_from(self.entities.len()).expect("entity overflow"));
        let resource: String = name
            .split_whitespace()
            .map(|w| {
                let mut chars = w.chars();
                match chars.next() {
                    Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join("");
        self.entities.push(Entity {
            id,
            etype,
            name,
            resource,
            aliases,
            popularity: 1.0,
        });
        id
    }

    fn fact(&mut self, subject: EntityId, relation: Relation, object: Obj) {
        self.facts.push(WorldFact {
            subject,
            relation,
            object,
        });
    }

    fn pick(&mut self, ids: &[EntityId]) -> EntityId {
        ids[self.rng.gen_range(0..ids.len())]
    }

    fn run(mut self) -> World {
        let cfg = self.config.clone();

        // Geography.
        let countries: Vec<EntityId> = (0..cfg.countries)
            .map(|_| {
                let name = self.names.country(&mut self.rng);
                let aliases = vec![name.clone()];
                self.push_entity(EntityType::Country, name, aliases)
            })
            .collect();
        let cities: Vec<EntityId> = (0..cfg.cities)
            .map(|_| {
                let name = self.names.city(&mut self.rng);
                let aliases = vec![name.clone()];
                let id = self.push_entity(EntityType::City, name, aliases);
                let country = self.pick(&countries);
                self.fact(id, Relation::CityInCountry, Obj::Entity(country));
                id
            })
            .collect();

        // Organizations.
        let leagues: Vec<EntityId> = (0..cfg.leagues)
            .map(|_| {
                let name = self.names.league(&mut self.rng);
                let aliases = vec![name.clone()];
                self.push_entity(EntityType::League, name, aliases)
            })
            .collect();
        let universities: Vec<EntityId> = (0..cfg.universities)
            .map(|_| {
                let name = self.names.university(&mut self.rng);
                let short = name.trim_end_matches(" University").to_string();
                let aliases = vec![name.clone(), short];
                let id = self.push_entity(EntityType::University, name, aliases);
                let city = self.pick(&cities);
                self.fact(id, Relation::UnivInCity, Obj::Entity(city));
                if self.rng.gen_bool(0.4) {
                    let league = self.pick(&leagues);
                    self.fact(id, Relation::MemberOfLeague, Obj::Entity(league));
                }
                id
            })
            .collect();
        let institutes: Vec<EntityId> = (0..cfg.institutes)
            .map(|_| {
                let name = self.names.institute(&mut self.rng);
                let aliases = vec![name.clone()];
                let id = self.push_entity(EntityType::Institute, name, aliases);
                let city = self.pick(&cities);
                self.fact(id, Relation::InstInCity, Obj::Entity(city));
                // Every institute is housed on some university campus —
                // knowledge that exists only in text (failure mode C).
                let univ = self.pick(&universities);
                self.fact(id, Relation::HousedIn, Obj::Entity(univ));
                id
            })
            .collect();
        let companies: Vec<EntityId> = (0..cfg.companies)
            .map(|_| {
                let base = self.names.city(&mut self.rng);
                let name = format!("{base} Corp");
                let aliases = vec![name.clone(), base];
                let id = self.push_entity(EntityType::Company, name, aliases);
                let city = self.pick(&cities);
                self.fact(id, Relation::HeadquarteredIn, Obj::Entity(city));
                id
            })
            .collect();

        // Prizes and fields.
        let prizes: Vec<EntityId> = (0..cfg.prizes)
            .map(|_| {
                let name = self.names.prize(&mut self.rng);
                let aliases = vec![name.clone()];
                self.push_entity(EntityType::Prize, name, aliases)
            })
            .collect();
        let fields: Vec<EntityId> = (0..cfg.fields)
            .map(|_| {
                let name = self.names.field(&mut self.rng);
                let aliases = vec![name.clone()];
                self.push_entity(EntityType::Field, name, aliases)
            })
            .collect();

        // People.
        let people: Vec<EntityId> = (0..cfg.people)
            .map(|_| {
                let pname = self.names.person(&mut self.rng);
                self.push_entity(EntityType::Person, pname.full(), pname.aliases())
            })
            .collect();
        // Popularity: Zipf over people by creation rank.
        let zipf = Zipf::new(people.len().max(1), cfg.zipf_exponent);
        for (rank, &pid) in people.iter().enumerate() {
            self.entities[pid.idx()].popularity = zipf.mass(rank) * people.len() as f64;
        }

        // Each institute recorded exactly one HousedIn fact above; index
        // those once so the person loop below stays O(people) instead of
        // rescanning the whole fact log per institute affiliate. The old
        // linear `find` consumed no RNG, and neither does this map, so
        // generated worlds are byte-identical to before.
        let housed_in: HashMap<EntityId, EntityId> = self
            .facts
            .iter()
            .filter(|f| f.relation == Relation::HousedIn)
            .filter_map(|f| match f.object {
                Obj::Entity(univ) => Some((f.subject, univ)),
                Obj::Literal(_) => None,
            })
            .collect();

        for (i, &pid) in people.iter().enumerate() {
            if self.rng.gen_bool(0.95) {
                let city = self.pick(&cities);
                self.fact(pid, Relation::BornIn, Obj::Entity(city));
            }
            if self.rng.gen_bool(0.9) {
                let date = self.names.date(&mut self.rng);
                self.fact(pid, Relation::BornOn, Obj::Literal(date));
            }
            if self.rng.gen_bool(0.3) {
                let city = self.pick(&cities);
                self.fact(pid, Relation::DiedIn, Obj::Entity(city));
            }
            if self.rng.gen_bool(0.8) {
                let univ = self.pick(&universities);
                self.fact(pid, Relation::GraduatedFrom, Obj::Entity(univ));
            }
            // Affiliation: mostly universities, sometimes institutes; an
            // institute affiliate usually also guest-lectures at the
            // university housing the institute (the Einstein/IAS scenario).
            if self.rng.gen_bool(0.9) {
                if !institutes.is_empty() && self.rng.gen_bool(0.2) {
                    let inst = self.pick(&institutes);
                    self.fact(pid, Relation::AffiliatedWith, Obj::Entity(inst));
                    if self.rng.gen_bool(0.7) {
                        if let Some(&univ) = housed_in.get(&inst) {
                            self.fact(pid, Relation::LecturedAt, Obj::Entity(univ));
                        }
                    }
                } else {
                    let univ = self.pick(&universities);
                    self.fact(pid, Relation::AffiliatedWith, Obj::Entity(univ));
                }
            }
            if self.rng.gen_bool(0.25) {
                let univ = self.pick(&universities);
                self.fact(pid, Relation::LecturedAt, Obj::Entity(univ));
            }
            // Advisors point to earlier people so the graph is acyclic.
            if i > 0 && self.rng.gen_bool(0.7) {
                let advisor = people[self.rng.gen_range(0..i)];
                self.fact(advisor, Relation::HasStudent, Obj::Entity(pid));
            }
            if self.rng.gen_bool(0.15) && !prizes.is_empty() {
                let prize = self.pick(&prizes);
                self.fact(pid, Relation::WonPrize, Obj::Entity(prize));
                let field = self.pick(&fields);
                self.fact(pid, Relation::PrizeFor, Obj::Entity(field));
            }
            if self.rng.gen_bool(0.3) && !companies.is_empty() {
                let company = self.pick(&companies);
                self.fact(pid, Relation::WorksFor, Obj::Entity(company));
            }
        }

        let mut by_type: Vec<(EntityType, Vec<EntityId>)> = EntityType::ALL
            .into_iter()
            .map(|t| (t, Vec::new()))
            .collect();
        for e in &self.entities {
            by_type
                .iter_mut()
                .find(|(t, _)| *t == e.etype)
                .expect("all types present")
                .1
                .push(e.id);
        }

        World {
            entities: self.entities,
            facts: self.facts,
            config: self.config,
            by_type,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig::tiny(42));
        let b = World::generate(WorldConfig::tiny(42));
        assert_eq!(a.entities.len(), b.entities.len());
        assert_eq!(a.facts.len(), b.facts.len());
        for (x, y) in a.entities.iter().zip(&b.entities) {
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(1));
        let b = World::generate(WorldConfig::tiny(2));
        let same = a
            .entities
            .iter()
            .zip(&b.entities)
            .all(|(x, y)| x.name == y.name);
        assert!(!same);
    }

    #[test]
    fn entity_counts_match_config() {
        let cfg = WorldConfig::tiny(7);
        let w = World::generate(cfg.clone());
        assert_eq!(w.of_type(EntityType::Person).len(), cfg.people);
        assert_eq!(w.of_type(EntityType::City).len(), cfg.cities);
        assert_eq!(w.of_type(EntityType::Country).len(), cfg.countries);
        assert_eq!(w.of_type(EntityType::University).len(), cfg.universities);
    }

    #[test]
    fn every_city_is_in_a_country() {
        let w = World::generate(WorldConfig::tiny(7));
        for &city in w.of_type(EntityType::City) {
            let located = w
                .facts
                .iter()
                .any(|f| f.subject == city && f.relation == Relation::CityInCountry);
            assert!(located);
        }
    }

    #[test]
    fn every_institute_is_housed_somewhere() {
        let w = World::generate(WorldConfig::tiny(7));
        for &inst in w.of_type(EntityType::Institute) {
            assert!(w
                .facts
                .iter()
                .any(|f| f.subject == inst && f.relation == Relation::HousedIn));
        }
    }

    #[test]
    fn advisor_graph_is_acyclic() {
        let w = World::generate(WorldConfig::tiny(11));
        for f in w.facts_of(Relation::HasStudent) {
            let Obj::Entity(student) = f.object else {
                panic!("student must be an entity");
            };
            assert!(f.subject < student, "advisor must precede student");
        }
    }

    #[test]
    fn prize_winners_have_motivations() {
        let w = World::generate(WorldConfig::tiny(13));
        for f in w.facts_of(Relation::WonPrize) {
            assert!(w
                .facts
                .iter()
                .any(|g| g.subject == f.subject && g.relation == Relation::PrizeFor));
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let w = World::generate(WorldConfig::tiny(5));
        let people = w.of_type(EntityType::Person);
        let first = w.entity(people[0]).popularity;
        let last = w.entity(*people.last().unwrap()).popularity;
        assert!(first > last);
    }

    #[test]
    fn resources_are_camel_case() {
        let w = World::generate(WorldConfig::tiny(5));
        for e in &w.entities {
            assert!(!e.resource.contains(' '), "{}", e.resource);
        }
    }

    #[test]
    fn scaled_config_scales() {
        let cfg = WorldConfig::demo(1).scaled(0.1);
        assert_eq!(cfg.people, 200);
        assert_eq!(cfg.universities, 12);
    }

    #[test]
    fn million_config_targets_a_million_triples() {
        let cfg = WorldConfig::million(1);
        assert_eq!(cfg.people, 190_000);
        // ~5.5 expected facts per person puts the world at ~1M triples.
        let expected = cfg.people as f64 * 5.5;
        assert!(expected > 1_000_000.0, "{expected}");
        assert!(cfg.zipf_exponent > 1.0);
    }

    #[test]
    fn institute_lectures_happen_at_the_housing_university() {
        // The housed-in index must route an institute affiliate's guest
        // lecture to the university that houses that institute. With a
        // fixed seed the generated world is stable, so at least one such
        // routed lecture must exist (the Einstein/IAS scenario).
        let w = World::generate(WorldConfig::tiny(23));
        let routed = w.facts_of(Relation::AffiliatedWith).any(|f| {
            let Obj::Entity(org) = f.object else {
                return false;
            };
            if w.entity(org).etype != EntityType::Institute {
                return false;
            }
            let Some(&Obj::Entity(univ)) = w
                .facts
                .iter()
                .find(|g| g.subject == org && g.relation == Relation::HousedIn)
                .map(|g| &g.object)
            else {
                return false;
            };
            w.facts.iter().any(|g| {
                g.subject == f.subject
                    && g.relation == Relation::LecturedAt
                    && g.object == Obj::Entity(univ)
            })
        });
        assert!(routed, "no institute affiliate lectures at a housing campus");
    }
}
