//! Text-corpus generation.
//!
//! Renders world facts into sentences using the per-relation paraphrase
//! templates, standing in for the paper's ClueWeb'09 crawl. The sampler is
//! popularity-weighted (Zipfian over subjects) and boosts facts *missing
//! from the KG*, reflecting the paper's observation that the finer aspects
//! of entities are "expressed only in hard-to-extract form in Web
//! contents". The resulting documents are raw text: the Open IE pipeline
//! in `trinit-openie` has to re-discover the triples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::EntityType;
use crate::world::{Entity, Obj, World};

/// A generated document: an identifier and its sentences.
#[derive(Debug, Clone)]
pub struct Document {
    /// Document identifier (stands in for a ClueWeb record id).
    pub id: String,
    /// The document's sentences.
    pub sentences: Vec<String>,
}

/// Knobs for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed (independent of world/KG seeds).
    pub seed: u64,
    /// Number of documents to generate.
    pub documents: usize,
    /// Sentences per document.
    pub sentences_per_doc: usize,
    /// Weight multiplier for facts absent from the KG (they are what the
    /// XKG extension must recover, so the web "talks about them" more).
    pub dropped_boost: f64,
    /// Probability that a sentence is unextractable noise.
    pub noise_rate: f64,
}

impl CorpusConfig {
    /// A small corpus for tests.
    pub fn tiny(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            documents: 40,
            sentences_per_doc: 6,
            dropped_boost: 3.0,
            noise_rate: 0.05,
        }
    }

    /// Demo-scale corpus matched to [`crate::world::WorldConfig::demo`].
    pub fn demo(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            documents: 8000,
            sentences_per_doc: 8,
            dropped_boost: 3.0,
            noise_rate: 0.3,
        }
    }
}

/// One entry of the entity-annotation catalog handed to the linker
/// (stands in for the FACC1 annotations of the paper).
#[derive(Debug, Clone)]
pub struct AliasEntry {
    /// Surface form as it appears in text.
    pub alias: String,
    /// Canonical resource the surface form may refer to.
    pub resource: String,
    /// Popularity prior of that resource.
    pub popularity: f64,
}

/// Builds the alias catalog of a world: every surface form of every
/// entity, with the entity's popularity as linking prior.
pub fn alias_catalog(world: &World) -> Vec<AliasEntry> {
    let mut out = Vec::new();
    for e in &world.entities {
        for alias in &e.aliases {
            out.push(AliasEntry {
                alias: alias.clone(),
                resource: e.resource.clone(),
                popularity: e.popularity,
            });
        }
    }
    out
}

fn surface<'a, R: Rng + ?Sized>(rng: &mut R, e: &'a Entity) -> &'a str {
    // People are often mentioned by ambiguous short forms; other entities
    // mostly by canonical name.
    if e.etype == EntityType::Person && e.aliases.len() > 1 && rng.gen_bool(0.3) {
        &e.aliases[rng.gen_range(1..e.aliases.len())]
    } else {
        &e.name
    }
}

const NOISE_PHRASES: &[&str] = &[
    "The old observatory was closed for renovation",
    "Several visitors admired the ancient library",
    "A new lecture hall opened near the river",
    "The committee postponed its annual meeting",
    "An early manuscript was recovered from the archive",
];

/// Web-style noise templates over invented names; each instantiation
/// yields a distinct, unlinkable extraction — the long tail of junk
/// triples that dominates real web crawls (the paper's 390 M ClueWeb
/// extractions are mostly of this kind).
const NOISE_TEMPLATES: &[&str] = &[
    "{a} visited {b}",
    "{a} met {b}",
    "{a} moved to {b}",
    "{a} wrote about {b}",
    "{a} worked with {b}",
];

fn noise_sentence<R: Rng + ?Sized>(rng: &mut R) -> String {
    if rng.gen_bool(0.3) {
        let phrase = NOISE_PHRASES[rng.gen_range(0..NOISE_PHRASES.len())];
        return format!("{phrase}.");
    }
    let a = crate::names::capitalize(&crate::names::syllables(rng, 2));
    let b = crate::names::capitalize(&crate::names::syllables(rng, 2));
    let template = NOISE_TEMPLATES[rng.gen_range(0..NOISE_TEMPLATES.len())];
    format!("{}.", template.replace("{a}", &a).replace("{b}", &b))
}

/// Generates a corpus for `world`.
///
/// `included_in_kg[i]` states whether `world.facts[i]` made it into the KG
/// (from [`crate::kg::KgProjection::included`]); facts missing from the KG
/// are sampled `dropped_boost` times more often.
pub fn generate_corpus(
    world: &World,
    included_in_kg: &[bool],
    cfg: &CorpusConfig,
) -> Vec<Document> {
    assert_eq!(
        included_in_kg.len(),
        world.facts.len(),
        "inclusion mask must cover all world facts"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Cumulative sampling weights over facts.
    let mut cumulative = Vec::with_capacity(world.facts.len());
    let mut acc = 0.0f64;
    for (i, f) in world.facts.iter().enumerate() {
        let spec = f.relation.spec();
        let pop = world.entity(f.subject).popularity.max(0.05);
        let boost = if included_in_kg[i] {
            1.0
        } else {
            cfg.dropped_boost
        };
        acc += spec.text_affinity * pop * boost;
        cumulative.push(acc);
    }

    let mut docs = Vec::with_capacity(cfg.documents);
    for d in 0..cfg.documents {
        let mut sentences = Vec::with_capacity(cfg.sentences_per_doc);
        for _ in 0..cfg.sentences_per_doc {
            if acc <= 0.0 || rng.gen_bool(cfg.noise_rate) {
                sentences.push(noise_sentence(&mut rng));
                continue;
            }
            let x = rng.gen_range(0.0..acc);
            let idx = cumulative.partition_point(|&c| c <= x);
            let fact = &world.facts[idx.min(world.facts.len() - 1)];
            let spec = fact.relation.spec();
            let template = spec.templates[rng.gen_range(0..spec.templates.len())];
            let subj = world.entity(fact.subject);
            let s_form = surface(&mut rng, subj).to_string();
            let o_form = match &fact.object {
                Obj::Entity(id) => surface(&mut rng, world.entity(*id)).to_string(),
                Obj::Literal(v) => v.clone(),
            };
            let text = template.replace("{s}", &s_form).replace("{o}", &o_form);
            sentences.push(format!("{text}."));
        }
        docs.push(Document {
            id: format!("synthweb:doc-{d:06}"),
            sentences,
        });
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::{project_kg, KgConfig};
    use crate::world::WorldConfig;

    fn setup() -> (World, Vec<bool>) {
        let world = World::generate(WorldConfig::tiny(17));
        let kg = project_kg(&world, &KgConfig::default());
        (world, kg.included)
    }

    #[test]
    fn corpus_has_requested_shape() {
        let (world, included) = setup();
        let cfg = CorpusConfig::tiny(3);
        let docs = generate_corpus(&world, &included, &cfg);
        assert_eq!(docs.len(), cfg.documents);
        assert!(docs.iter().all(|d| d.sentences.len() == cfg.sentences_per_doc));
    }

    #[test]
    fn corpus_is_deterministic() {
        let (world, included) = setup();
        let a = generate_corpus(&world, &included, &CorpusConfig::tiny(3));
        let b = generate_corpus(&world, &included, &CorpusConfig::tiny(3));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sentences, y.sentences);
        }
    }

    #[test]
    fn sentences_end_with_period() {
        let (world, included) = setup();
        let docs = generate_corpus(&world, &included, &CorpusConfig::tiny(5));
        for d in docs {
            for s in d.sentences {
                assert!(s.ends_with('.'), "{s}");
            }
        }
    }

    #[test]
    fn kg_missing_relations_appear_in_text() {
        let (world, included) = setup();
        let docs = generate_corpus(&world, &included, &CorpusConfig::tiny(7));
        let all: String = docs
            .iter()
            .flat_map(|d| d.sentences.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(" ");
        // At least one of the text-only relations must be rendered.
        assert!(
            all.contains("housed") || all.contains("lectur") || all.contains("honored"),
            "text-only relations should dominate the corpus"
        );
    }

    #[test]
    fn alias_catalog_covers_every_entity() {
        let (world, _) = setup();
        let catalog = alias_catalog(&world);
        for e in &world.entities {
            assert!(catalog.iter().any(|a| a.resource == e.resource));
        }
    }

    #[test]
    #[should_panic(expected = "inclusion mask")]
    fn mismatched_mask_panics() {
        let (world, _) = setup();
        let _ = generate_corpus(&world, &[true], &CorpusConfig::tiny(1));
    }
}
