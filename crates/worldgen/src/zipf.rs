//! Zipfian popularity sampling.
//!
//! Entity mention frequency in web text is heavily skewed; the corpus
//! generator uses a Zipf distribution over entities so that the extraction
//! pipeline sees realistic support-count skew (a handful of very redundant
//! facts, a long tail observed once).

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling uses the inverse-CDF over precomputed cumulative weights, which
/// is exact and O(log n) per draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `n == 0` yields a distribution that cannot be sampled; `s = 0`
    /// degenerates to uniform.
    pub fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the distribution has no ranks.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The probability mass of `rank` (0-based).
    pub fn mass(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty Zipf");
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - prev) / total
    }

    /// Samples a rank in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty Zipf");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn masses_sum_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.mass(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
