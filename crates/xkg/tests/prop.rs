//! Property tests for the XKG store substrate.

use proptest::prelude::*;

use trinit_xkg::{
    PostingList, Provenance, SegmentLayout, SlotPattern, SourceId, TermDict, TermId, TermKind,
    Triple, XkgBuilder, XkgStore,
};

/// Strategy: a small universe of term ids per kind.
fn term_id(kind: TermKind, universe: u32) -> impl Strategy<Value = TermId> {
    (0..universe).prop_map(move |i| TermId::new(kind, i))
}

fn triple(universe: u32) -> impl Strategy<Value = Triple> {
    (
        term_id(TermKind::Resource, universe),
        prop_oneof![
            term_id(TermKind::Resource, universe),
            term_id(TermKind::Token, universe)
        ],
        prop_oneof![
            term_id(TermKind::Resource, universe),
            term_id(TermKind::Token, universe),
            term_id(TermKind::Literal, universe)
        ],
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn builder_from(triples: &[(Triple, f32, u8)]) -> XkgBuilder {
    let mut b = XkgBuilder::new();
    for (t, conf, support) in triples {
        let mut prov = Provenance::extraction(*conf, SourceId(0));
        prov.support = u32::from(*support) + 1;
        b.add(*t, prov);
    }
    b
}

fn store_from(triples: &[(Triple, f32, u8)]) -> XkgStore {
    builder_from(triples).build()
}

/// Asserts two posting lists are bit-for-bit identical: same triples in
/// the same order, weights, probabilities, totals and every prefix sum
/// equal as raw f64 bits, not merely within an epsilon.
fn assert_lists_bit_identical(a: &PostingList, b: &PostingList, ctx: &str) {
    assert_eq!(a.len(), b.len(), "length differs: {ctx}");
    for (x, y) in a.entries().iter().zip(b.entries()) {
        assert_eq!(x.triple, y.triple, "order differs: {ctx}");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "weight bits differ: {ctx}"
        );
        assert_eq!(x.prob.to_bits(), y.prob.to_bits(), "prob bits differ: {ctx}");
    }
    assert_eq!(
        a.total_weight().to_bits(),
        b.total_weight().to_bits(),
        "total bits differ: {ctx}"
    );
    for upto in 0..=a.len() {
        assert_eq!(
            a.prefix_weight(upto).to_bits(),
            b.prefix_weight(upto).to_bits(),
            "prefix bits differ at {upto}: {ctx}"
        );
    }
}

proptest! {
    /// Every pattern shape answered through a permutation index returns
    /// exactly the triples a linear scan finds.
    #[test]
    fn index_lookup_equals_linear_scan(
        triples in proptest::collection::vec((triple(6), 0.01f32..1.0, 0u8..4), 0..60),
        s in proptest::option::of(term_id(TermKind::Resource, 6)),
        p in proptest::option::of(term_id(TermKind::Resource, 6)),
        o in proptest::option::of(term_id(TermKind::Resource, 6)),
    ) {
        let store = store_from(&triples);
        let pattern = SlotPattern::new(s, p, o);
        let mut got: Vec<u32> = store.lookup(&pattern).iter().map(|t| t.0).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = store
            .iter()
            .filter(|(_, t)| pattern.matches(*t))
            .map(|(id, _)| id.0)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Deduplication: the store never holds two identical (s,p,o) rows,
    /// and merged support equals the number of insertions.
    #[test]
    fn dedup_preserves_support_total(
        triples in proptest::collection::vec((triple(3), 0.01f32..1.0, 0u8..1), 1..40),
    ) {
        let store = store_from(&triples);
        let mut seen = std::collections::HashSet::new();
        let mut support_total = 0u32;
        for (id, t) in store.iter() {
            prop_assert!(seen.insert(t), "duplicate triple in store");
            support_total += store.provenance(id).support;
        }
        prop_assert_eq!(support_total as usize, triples.len());
    }

    /// Posting lists are sorted descending and their probabilities form a
    /// distribution over the pattern's matches.
    #[test]
    fn posting_probabilities_are_a_distribution(
        triples in proptest::collection::vec((triple(5), 0.01f32..1.0, 0u8..4), 1..50),
        p in term_id(TermKind::Resource, 5),
    ) {
        let store = store_from(&triples);
        let list = trinit_xkg::PostingList::build(&store, &SlotPattern::with_p(p));
        let probs: Vec<f64> = list.entries().iter().map(|e| e.prob).collect();
        prop_assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        if !probs.is_empty() {
            let sum: f64 = probs.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Dictionary interning round-trips arbitrary strings.
    #[test]
    fn dict_roundtrip(words in proptest::collection::vec("[a-zA-Z0-9 ']{1,20}", 1..30)) {
        let mut dict = TermDict::new();
        let ids: Vec<(TermId, String)> = words
            .iter()
            .map(|w| (dict.token(w), w.clone()))
            .collect();
        for (id, w) in &ids {
            prop_assert_eq!(dict.resolve(*id), Some(w.as_str()));
            prop_assert_eq!(dict.get(TermKind::Token, w), Some(*id));
        }
    }

    /// Counting via the index equals the lookup length for all shapes.
    #[test]
    fn count_is_consistent(
        triples in proptest::collection::vec((triple(4), 0.5f32..1.0, 0u8..1), 0..40),
        p in proptest::option::of(term_id(TermKind::Resource, 4)),
        o in proptest::option::of(term_id(TermKind::Resource, 4)),
    ) {
        let store = store_from(&triples);
        let pattern = SlotPattern::new(None, p, o);
        prop_assert_eq!(store.count(&pattern), store.lookup(&pattern).len());
    }

    /// The columnar lookup and the posting-index slices agree with a
    /// linear scan for **all 8 pattern shapes**: same match set, and the
    /// posting list's scores are exactly the linear scan's weights.
    #[test]
    fn columnar_lookup_and_postings_agree_with_linear_scan_all_shapes(
        triples in proptest::collection::vec((triple(5), 0.01f32..1.0, 0u8..4), 0..60),
        s in term_id(TermKind::Resource, 5),
        p in term_id(TermKind::Resource, 5),
        o in term_id(TermKind::Resource, 5),
    ) {
        let store = store_from(&triples);
        for mask in 0u8..8 {
            let pattern = SlotPattern::new(
                (mask & 1 != 0).then_some(s),
                (mask & 2 != 0).then_some(p),
                (mask & 4 != 0).then_some(o),
            );
            let mut want: Vec<u32> = store
                .iter()
                .filter(|(_, t)| pattern.matches(*t))
                .map(|(id, _)| id.0)
                .collect();
            want.sort_unstable();

            // Columnar permutation lookup.
            let mut got: Vec<u32> = store.lookup(&pattern).iter().map(|t| t.0).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "lookup disagrees for shape {:#05b}", mask);

            // Posting list over the same pattern (borrowed slice for the
            // predicate-only and unbound shapes, materialized otherwise).
            let list = trinit_xkg::PostingList::build(&store, &pattern);
            let mut posting_ids: Vec<u32> = list.entries().iter().map(|e| e.triple.0).collect();
            posting_ids.sort_unstable();
            prop_assert_eq!(&posting_ids, &want, "postings disagree for shape {:#05b}", mask);
            for e in list.entries() {
                let w = store.provenance(e.triple).weight();
                prop_assert!((e.weight - w).abs() < 1e-12, "weight mismatch");
            }
        }
    }

    /// Posting order is identical to the seed implementation's: the full
    /// match set sorted by descending weight with ties broken by ascending
    /// triple id, and probabilities `weight / total` with the total over
    /// the whole match set.
    #[test]
    fn posting_order_matches_seed_reference(
        triples in proptest::collection::vec((triple(5), 0.01f32..1.0, 0u8..4), 0..60),
        p in proptest::option::of(term_id(TermKind::Resource, 5)),
    ) {
        let store = store_from(&triples);
        let pattern = SlotPattern::new(None, p, None);
        // Reference: the seed's per-query materialize-and-sort.
        let mut reference: Vec<(u32, f64)> = store
            .lookup(&pattern)
            .iter()
            .map(|&id| (id.0, store.provenance(id).weight()))
            .collect();
        let total: f64 = reference.iter().map(|(_, w)| w).sum();
        reference.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let list = trinit_xkg::PostingList::build(&store, &pattern);
        prop_assert_eq!(list.len(), reference.len());
        for (e, (id, w)) in list.entries().iter().zip(&reference) {
            prop_assert_eq!(e.triple.0, *id, "order differs from seed implementation");
            prop_assert!((e.weight - w).abs() < 1e-12);
            let expect_prob = if total > 0.0 { w / total } else { 0.0 };
            prop_assert!((e.prob - expect_prob).abs() < 1e-9, "prob differs: {} vs {}", e.prob, expect_prob);
        }
        prop_assert!((list.total_weight() - total).abs() < 1e-9);
    }

    /// Prefix-summed weights agree with direct summation at every depth.
    #[test]
    fn prefix_weights_agree_with_direct_sums(
        triples in proptest::collection::vec((triple(4), 0.01f32..1.0, 0u8..4), 0..40),
        p in proptest::option::of(term_id(TermKind::Resource, 4)),
    ) {
        let store = store_from(&triples);
        let pattern = SlotPattern::new(None, p, None);
        let list = trinit_xkg::PostingList::build(&store, &pattern);
        for upto in 0..=list.len() {
            let direct: f64 = list.entries()[..upto].iter().map(|e| e.weight).sum();
            prop_assert!((list.prefix_weight(upto) - direct).abs() < 1e-9);
        }
    }

    /// The precomputed index serves **all 8 pattern shapes**
    /// entry-for-entry equal to the pre-index materialize-and-sort
    /// reference: same triples in the same order, the same probabilities
    /// and prefix sums, the same totals — including zero-weight facts
    /// (zero-mass match sets serve empty on both paths).
    #[test]
    fn anchored_index_equals_scan_reference_all_shapes(
        triples in proptest::collection::vec(
            (
                triple(5),
                // ~20% exact zero-weight facts to exercise massless
                // groups (the shim has no `Just`, so map a range).
                (0.0f32..1.0).prop_map(|c| if c < 0.2 { 0.0 } else { c }),
                0u8..4,
            ),
            0..60,
        ),
        s in term_id(TermKind::Resource, 5),
        p in term_id(TermKind::Resource, 5),
        o in term_id(TermKind::Resource, 5),
    ) {
        let store = store_from(&triples);
        for mask in 0u8..8 {
            let pattern = SlotPattern::new(
                (mask & 1 != 0).then_some(s),
                (mask & 2 != 0).then_some(p),
                (mask & 4 != 0).then_some(o),
            );
            let indexed = trinit_xkg::PostingList::build(&store, &pattern);
            let reference = trinit_xkg::PostingList::build_by_scan(&store, &pattern);
            prop_assert_eq!(
                indexed.len(),
                reference.len(),
                "length differs for shape {:#05b}",
                mask
            );
            for (a, b) in indexed.entries().iter().zip(reference.entries()) {
                prop_assert_eq!(a.triple, b.triple, "order differs for shape {:#05b}", mask);
                prop_assert_eq!(a.weight, b.weight, "weight differs for shape {:#05b}", mask);
                prop_assert!(
                    (a.prob - b.prob).abs() <= 1e-12,
                    "prob differs for shape {:#05b}: {} vs {}",
                    mask, a.prob, b.prob
                );
            }
            prop_assert!(
                (indexed.total_weight() - reference.total_weight()).abs() < 1e-9,
                "total differs for shape {:#05b}",
                mask
            );
            for upto in 0..=indexed.len() {
                prop_assert!(
                    (indexed.prefix_weight(upto) - reference.prefix_weight(upto)).abs() < 1e-9,
                    "prefix sum differs for shape {:#05b} at {}",
                    mask, upto
                );
            }
            // The borrowed anchored slices never allocate or sort; the
            // composite shapes filter (one allocation); nothing scans.
            prop_assert!(
                indexed.serve_kind() != trinit_xkg::ServeKind::Scanned,
                "engine-facing build must never sort"
            );
        }
    }

    /// Per-stratum counts (now frozen at build time) match a full scan.
    #[test]
    fn stratum_counts_match_scan(
        triples in proptest::collection::vec((triple(4), 0.01f32..1.0, 0u8..2), 0..40),
        kg_every in 2usize..5,
    ) {
        let mut b = XkgBuilder::new();
        for (i, (t, conf, support)) in triples.iter().enumerate() {
            if i % kg_every == 0 {
                b.add(*t, Provenance::kg());
            } else {
                let mut prov = Provenance::extraction(*conf, SourceId(0));
                prov.support = u32::from(*support) + 1;
                b.add(*t, prov);
            }
        }
        let store = b.build();
        let kg_scan = store
            .iter()
            .filter(|(id, _)| store.provenance(*id).graph == trinit_xkg::GraphTag::Kg)
            .count();
        prop_assert_eq!(store.len_of(trinit_xkg::GraphTag::Kg), kg_scan);
        prop_assert_eq!(
            store.len_of(trinit_xkg::GraphTag::Xkg),
            store.len() - kg_scan
        );
    }
}

proptest! {
    /// The `ServeKind::Range` cutover rule — materialize and order the
    /// permutation index's exact match range when it is ≥4× smaller
    /// than every covering group — selects only *how* a composite shape
    /// is served, never *what*: the served entries are bit-for-bit the
    /// scan reference's either way, and the chosen kind follows the
    /// selectivity rule exactly (so the engine-level `ranged_serves` vs
    /// `anchored_serves` accounting is the rule's only observable).
    /// Hub-concentrated objects make both sides of the 4× boundary
    /// common in one store.
    #[test]
    fn range_cutover_changes_accounting_not_contents(
        triples in proptest::collection::vec(
            (triple(8), 0.01f32..1.0, 0u8..4),
            0..80,
        ),
        hub_fanout in 1usize..30,
        s in term_id(TermKind::Resource, 8),
        p in term_id(TermKind::Resource, 8),
        o in term_id(TermKind::Resource, 8),
    ) {
        // Concentrate extra triples on one (subject, predicate) hub so
        // composite probes meet large covering groups.
        let mut rows = triples.clone();
        for i in 0..hub_fanout {
            rows.push((
                Triple::new(s, p, TermId::new(TermKind::Resource, 100 + i as u32)),
                0.5,
                1,
            ));
        }
        let store = store_from(&rows);
        // The four composite shapes (≥2 bound slots): sp, so, po, spo.
        for mask in [0b011u8, 0b101, 0b110, 0b111] {
            let pattern = SlotPattern::new(
                (mask & 1 != 0).then_some(s),
                (mask & 2 != 0).then_some(p),
                (mask & 4 != 0).then_some(o),
            );
            let matches = store.lookup(&pattern).len();
            // The smallest covering already-sorted group, exactly as the
            // serving path considers them.
            let mut group: Option<usize> = None;
            let mut consider = |len: usize| {
                if group.is_none_or(|g| len < g) {
                    group = Some(len);
                }
            };
            if mask & 1 != 0 {
                consider(store.count(&SlotPattern::new(Some(s), None, None)));
            }
            if mask & 4 != 0 {
                consider(store.count(&SlotPattern::new(None, None, Some(o))));
            }
            if mask & 2 != 0 {
                consider(store.posting_index().predicate_group_len(p));
            }
            let group = group.expect("composite shapes bind a slot");

            let list = trinit_xkg::PostingList::build(&store, &pattern);
            if matches == 0 {
                prop_assert_eq!(list.len(), 0, "shape {:#05b}", mask);
                continue;
            }
            let expect_range = matches * 4 <= group;
            prop_assert_eq!(
                list.serve_kind() == trinit_xkg::ServeKind::Range,
                expect_range,
                "cutover rule mismatch for shape {:#05b}: {} matches vs group {}",
                mask, matches, group
            );

            // Contents are the scan reference's, bit for bit, on both
            // sides of the rule.
            let reference = trinit_xkg::PostingList::build_by_scan(&store, &pattern);
            prop_assert_eq!(list.len(), reference.len(), "shape {:#05b}", mask);
            for (a, b) in list.entries().iter().zip(reference.entries()) {
                prop_assert_eq!(a.triple, b.triple, "order differs, shape {:#05b}", mask);
                prop_assert_eq!(a.weight, b.weight, "weight differs, shape {:#05b}", mask);
                prop_assert!(
                    (a.prob - b.prob).abs() <= 1e-12,
                    "prob differs, shape {:#05b}: {} vs {}",
                    mask, a.prob, b.prob
                );
            }
            prop_assert!(
                (list.total_weight() - reference.total_weight()).abs() < 1e-9,
                "total differs, shape {:#05b}",
                mask
            );
        }
    }
}

proptest! {
    /// Sharded builds serve the same answers regardless of layout: for
    /// every shard count in {1, 2, 4, 7} and **all 8 pattern shapes**,
    /// a `Packed` shard serves bit-for-bit what its `Flat` twin serves —
    /// same triples, weights, probabilities, totals and prefix sums.
    #[test]
    fn packed_shards_equal_flat_shards_all_shapes(
        triples in proptest::collection::vec((triple(6), 0.01f32..1.0, 0u8..4), 0..80),
        s in term_id(TermKind::Resource, 6),
        p in term_id(TermKind::Resource, 6),
        o in term_id(TermKind::Resource, 6),
    ) {
        for shards in [1usize, 2, 4, 7] {
            let flat = builder_from(&triples).build_sharded(shards);
            let packed =
                builder_from(&triples).build_sharded_with(shards, SegmentLayout::Packed);
            prop_assert_eq!(flat.len(), shards);
            prop_assert_eq!(packed.len(), shards);
            for (i, (f, q)) in flat.iter().zip(&packed).enumerate() {
                prop_assert!(f.layout().is_flat());
                prop_assert!(!q.layout().is_flat());
                prop_assert_eq!(f.len(), q.len(), "shard {} sizes differ", i);
                for mask in 0u8..8 {
                    let pattern = SlotPattern::new(
                        (mask & 1 != 0).then_some(s),
                        (mask & 2 != 0).then_some(p),
                        (mask & 4 != 0).then_some(o),
                    );
                    let fl = PostingList::build(f, &pattern);
                    let pl = PostingList::build(q, &pattern);
                    assert_lists_bit_identical(
                        &fl,
                        &pl,
                        &format!("{shards} shards, shard {i}, shape {mask:#05b}"),
                    );
                }
            }
        }
    }

    /// Quantized weight codes never perturb ranking on the pools that
    /// stress them most: tie-heavy pools (few distinct weights, many
    /// repeats — code collisions guaranteed) and extreme-magnitude pools
    /// (weights spanning ~1e-30 to ~1e35, outside the code's well-
    /// resolved band). Packed serves bit-for-bit what Flat serves.
    #[test]
    fn quantized_ranking_survives_ties_and_extremes(
        tie_rows in proptest::collection::vec((triple(4), 0u8..3, 0u8..2), 1..60),
        extreme_rows in proptest::collection::vec((triple(4), 0u8..5, 0u8..4), 1..40),
        p in term_id(TermKind::Resource, 4),
    ) {
        // Tie-heavy: confidences drawn from three exact values so many
        // entries share a weight and therefore a quantized code.
        let ties: Vec<(Triple, f32, u8)> = tie_rows
            .iter()
            .map(|&(t, lvl, sup)| (t, [0.25f32, 0.5, 1.0][lvl as usize], sup))
            .collect();
        // Extreme magnitudes: confidences from 1e-30 up to 1e35, well
        // past the log-domain band the u16 code resolves cleanly.
        let extremes: Vec<(Triple, f32, u8)> = extreme_rows
            .iter()
            .map(|&(t, lvl, sup)| {
                (t, [1e-30f32, 1e-9, 1.0, 1e9, 1e35][lvl as usize], sup)
            })
            .collect();
        for (pool, name) in [(&ties, "ties"), (&extremes, "extremes")] {
            let flat = builder_from(pool).build();
            let packed = builder_from(pool).build_with(SegmentLayout::Packed);
            for pattern in [SlotPattern::any(), SlotPattern::with_p(p)] {
                let fl = PostingList::build(&flat, &pattern);
                let pl = PostingList::build(&packed, &pattern);
                assert_lists_bit_identical(&fl, &pl, name);
            }
        }
    }
}
