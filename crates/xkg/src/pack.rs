//! Bit-packing primitives for the compact (`Packed`) segment layout.
//!
//! A [`BitWriter`] appends fixed-width little-endian bit fields to a
//! shared `u64` word stream; [`read_bits`] extracts a field at an
//! arbitrary bit offset. Widths span `0..=64` — width 0 stores nothing
//! (every value in the run equals the block reference) and width 64 is
//! a raw copy. On top of that, [`PackedInts`] stores a whole column at
//! one fixed width (used for posting-stratum triple ids, whose width is
//! `ceil_log2` of the segment length).
//!
//! All readers are branch-light and allocation-free: a field spans at
//! most two words, so a read is one or two shifts plus a mask. Nothing
//! here panics on out-of-range offsets in release serving paths —
//! callers index within lengths they recorded at build time.

/// Physical layout of a frozen segment's permutation and posting
/// structures.
///
/// `Flat` keeps every column borrowable in memory (16 B/triple per
/// permutation, 32 B/triple per posting stratum) — the right choice for
/// small hot segments such as ingest deltas, which are rebuilt
/// constantly and queried while warm. `Packed` stores bit-packed delta
/// blocks behind sparse directories plus quantized posting weights
/// (u16 log-domain codes with exact per-group `f64` scaffolding) —
/// roughly 3–4× fewer index bytes per triple, chosen for frozen base
/// segments. Query answers are identical in both layouts, bit for bit;
/// only the serving mechanics differ (borrowed slices versus
/// decode-into-scratch).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentLayout {
    /// Borrowable flat columns; maximal speed, maximal bytes.
    #[default]
    Flat,
    /// Bit-packed delta blocks + quantized weights; ~3–4× fewer bytes.
    Packed,
}

impl SegmentLayout {
    /// True for the Flat layout.
    #[inline]
    pub fn is_flat(self) -> bool {
        matches!(self, SegmentLayout::Flat)
    }
}

/// Number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Appends fixed-width fields to a `u64` word stream.
#[derive(Debug, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    /// Total bits written.
    len_bits: u64,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Current length in bits — the offset the next `push` lands at.
    #[inline]
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Appends the low `width` bits of `v`. Bits of `v` above `width`
    /// must be zero (callers subtract the block reference first).
    pub fn push(&mut self, v: u64, width: u8) {
        debug_assert!(width == 64 || v < (1u64 << width), "value wider than field");
        if width == 0 {
            return;
        }
        let bit = (self.len_bits % 64) as u32;
        match self.words.last_mut() {
            // A non-zero bit offset implies a previous push created the
            // word being appended to.
            Some(last) if bit != 0 => {
                *last |= v << bit;
                if u32::from(width) + bit > 64 {
                    self.words.push(v >> (64 - bit));
                }
            }
            _ => self.words.push(v),
        }
        self.len_bits += u64::from(width);
    }

    /// Freezes the stream into its word vector, trimmed to fit: the
    /// doubling capacity the pushes grew is real heap the frozen
    /// segment would otherwise hold (and `heap_bytes` count) forever.
    pub fn finish(self) -> Vec<u64> {
        let mut words = self.words;
        words.shrink_to_fit();
        words
    }
}

/// Reads the `width`-bit field at bit offset `bit` from `words`.
///
/// Out-of-range reads return 0 rather than panicking — the packed
/// readers live on serving paths and must degrade, not abort.
#[inline]
pub fn read_bits(words: &[u64], bit: u64, width: u8) -> u64 {
    if width == 0 {
        return 0;
    }
    let word = (bit / 64) as usize;
    let shift = (bit % 64) as u32;
    let Some(&lo) = words.get(word) else { return 0 };
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    let mut v = lo >> shift;
    if shift + u32::from(width) > 64 {
        let hi = words.get(word + 1).copied().unwrap_or(0);
        v |= hi << (64 - shift);
    }
    v & mask
}

/// A column of `u64` values stored at one fixed bit width.
///
/// Random access is O(1); the width is chosen once at build time
/// (`ceil_log2(max + 1)`), so the column never stores more bits than
/// its largest value needs.
#[derive(Debug, Clone)]
pub struct PackedInts {
    words: Vec<u64>,
    width: u8,
    len: usize,
}

impl PackedInts {
    /// Packs `values` at the minimal fixed width covering their maximum.
    pub fn from_values(values: impl ExactSizeIterator<Item = u64> + Clone) -> PackedInts {
        let width = bits_for(values.clone().max().unwrap_or(0));
        let mut w = BitWriter::new();
        let len = values.len();
        for v in values {
            w.push(v, width);
        }
        PackedInts {
            words: w.finish(),
            width,
            len,
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed field width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The value at `i` (0 when `i` is out of range — packed readers
    /// degrade rather than panic on serving paths).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        if i >= self.len {
            return 0;
        }
        read_bits(&self.words, i as u64 * u64::from(self.width), self.width)
    }

    /// Heap bytes held by the word stream.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    /// Round-trip at every width 0..=64, with values crossing word
    /// boundaries (the count is coprime to 64 so fields straddle).
    #[test]
    fn round_trip_every_width() {
        for width in 0u8..=64 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..131u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                .collect();
            let mut w = BitWriter::new();
            for &v in &values {
                w.push(v, width);
            }
            let words = w.finish();
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(
                    read_bits(&words, i as u64 * u64::from(width), width),
                    v,
                    "width {width} index {i}"
                );
            }
        }
    }

    #[test]
    fn mixed_width_stream_round_trips() {
        let mut rng = StdRng::seed_from_u64(0xE13);
        let mut fields: Vec<(u64, u8)> = Vec::new();
        let mut w = BitWriter::new();
        let mut offsets = Vec::new();
        for _ in 0..500 {
            let width = rng.gen_range(0u8..65);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width).wrapping_sub(1)
            };
            let v = rng.next_u64() & mask;
            offsets.push(w.len_bits());
            w.push(v, width);
            fields.push((v, width));
        }
        let words = w.finish();
        for (i, &(v, width)) in fields.iter().enumerate() {
            assert_eq!(read_bits(&words, offsets[i], width), v, "field {i}");
        }
    }

    #[test]
    fn packed_ints_round_trip_and_degrade() {
        let values: Vec<u64> = (0..300).map(|i| (i * 37) % 1000).collect();
        let col = PackedInts::from_values(values.iter().copied());
        assert_eq!(col.len(), 300);
        assert_eq!(col.width(), bits_for(999));
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(col.get(i), v);
        }
        // Out-of-range reads degrade to 0.
        assert_eq!(col.get(300), 0);
        assert_eq!(read_bits(&[], 0, 17), 0);
    }

    #[test]
    fn packed_ints_empty_and_zero() {
        let empty = PackedInts::from_values([].into_iter());
        assert!(empty.is_empty());
        assert_eq!(empty.get(0), 0);
        let zeros = PackedInts::from_values([0u64; 10].into_iter());
        assert_eq!(zeros.width(), 0);
        assert_eq!(zeros.get(7), 0);
        assert_eq!(zeros.len(), 10);
    }
}
