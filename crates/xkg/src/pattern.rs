//! Storage-level triple patterns.
//!
//! A [`SlotPattern`] is the store's view of a triple pattern: each slot is
//! either bound to a concrete term or a wildcard. Variable identity (which
//! wildcard slots must bind to the same node) is a query-layer concern and
//! lives in `trinit-query`; the store only needs to know *which* slots are
//! bound in order to pick a permutation index.

use std::fmt;

use crate::term::TermId;
use crate::triple::Triple;

/// A triple pattern with each slot either bound or a wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotPattern {
    /// Bound subject, or `None` for a wildcard.
    pub s: Option<TermId>,
    /// Bound predicate, or `None` for a wildcard.
    pub p: Option<TermId>,
    /// Bound object, or `None` for a wildcard.
    pub o: Option<TermId>,
}

impl SlotPattern {
    /// A pattern with all slots wild (matches every triple).
    pub fn any() -> SlotPattern {
        SlotPattern::default()
    }

    /// Creates a pattern from optional slot bindings.
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> SlotPattern {
        SlotPattern { s, p, o }
    }

    /// Pattern matching all triples with predicate `p`.
    pub fn with_p(p: TermId) -> SlotPattern {
        SlotPattern::new(None, Some(p), None)
    }

    /// Pattern matching all triples with subject `s` and predicate `p`.
    pub fn with_sp(s: TermId, p: TermId) -> SlotPattern {
        SlotPattern::new(Some(s), Some(p), None)
    }

    /// Pattern matching all triples with predicate `p` and object `o`.
    pub fn with_po(p: TermId, o: TermId) -> SlotPattern {
        SlotPattern::new(None, Some(p), Some(o))
    }

    /// Bitmask of bound slots: bit 0 = subject, bit 1 = predicate,
    /// bit 2 = object.
    #[inline]
    pub fn bound_mask(&self) -> u8 {
        (self.s.is_some() as u8) | ((self.p.is_some() as u8) << 1) | ((self.o.is_some() as u8) << 2)
    }

    /// Number of bound slots.
    #[inline]
    pub fn bound_count(&self) -> u8 {
        self.bound_mask().count_ones() as u8
    }

    /// True if every slot is bound (the pattern is a fully ground triple).
    #[inline]
    pub fn is_ground(&self) -> bool {
        self.bound_mask() == 0b111
    }

    /// Tests whether a concrete triple matches this pattern.
    #[inline]
    pub fn matches(&self, t: Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

impl fmt::Display for SlotPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn slot(f: &mut fmt::Formatter<'_>, t: Option<TermId>) -> fmt::Result {
            match t {
                Some(id) => write!(f, "{id:?}"),
                None => f.write_str("?"),
            }
        }
        slot(f, self.s)?;
        f.write_str(" ")?;
        slot(f, self.p)?;
        f.write_str(" ")?;
        slot(f, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn bound_mask_covers_all_shapes() {
        assert_eq!(SlotPattern::any().bound_mask(), 0b000);
        assert_eq!(SlotPattern::with_p(tid(0)).bound_mask(), 0b010);
        assert_eq!(SlotPattern::with_sp(tid(0), tid(1)).bound_mask(), 0b011);
        assert_eq!(SlotPattern::with_po(tid(0), tid(1)).bound_mask(), 0b110);
        let ground = SlotPattern::new(Some(tid(0)), Some(tid(1)), Some(tid(2)));
        assert_eq!(ground.bound_mask(), 0b111);
        assert!(ground.is_ground());
        assert_eq!(ground.bound_count(), 3);
    }

    #[test]
    fn matches_respects_bound_slots() {
        let t = Triple::new(tid(1), tid(2), tid(3));
        assert!(SlotPattern::any().matches(t));
        assert!(SlotPattern::with_sp(tid(1), tid(2)).matches(t));
        assert!(!SlotPattern::with_sp(tid(1), tid(9)).matches(t));
        assert!(SlotPattern::with_po(tid(2), tid(3)).matches(t));
        assert!(!SlotPattern::with_po(tid(2), tid(9)).matches(t));
    }

    #[test]
    fn display_marks_wildcards() {
        let p = SlotPattern::with_p(tid(5));
        assert_eq!(p.to_string(), "? resource#5 ?");
    }
}
