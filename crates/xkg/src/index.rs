//! Columnar permutation indexes over the triple table.
//!
//! # Layout
//!
//! Six sorted permutations (SPO, SOP, PSO, POS, OSP, OPS) make every shape
//! of [`SlotPattern`] answerable with a binary-searched contiguous range,
//! in the style of in-memory RDF stores (HDT, Hexastore). Each permutation
//! is stored **columnar**: a flat `Vec<[TermId; 3]>` *key column* holding
//! the permuted keys inline, plus an aligned `Vec<TripleId>` *id column*.
//! A probe therefore touches only the key column — sequential 12-byte
//! records, no pointer chase back into the triple table and no per-probe
//! heap allocation — and returns a slice of the id column.
//!
//! # Cost model
//!
//! * **Memory**: 16 bytes per triple per permutation (12-byte inline key +
//!   4-byte id), 96 bytes per triple for all six — against 24 bytes for
//!   the id-only layout this replaced. The keys are redundant with the
//!   triple table; they are duplicated precisely so probes never touch it.
//! * **Lookup**: two `partition_point` binary searches over the key
//!   column; `O(log n)` key-prefix comparisons, zero allocations.
//! * **Build**: each permutation materializes its key column once and
//!   sorts `(key, id)` rows with inline comparisons (no `perm.key()`
//!   recomputation per comparison). Permutations build on six scoped
//!   threads when the table is large enough to amortize spawning.

use crate::pattern::SlotPattern;
use crate::term::TermId;
use crate::triple::{Triple, TripleId};

/// One of the six orderings of (S, P, O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Permutation {
    /// subject, predicate, object
    SPO,
    /// subject, object, predicate
    SOP,
    /// predicate, subject, object
    PSO,
    /// predicate, object, subject
    POS,
    /// object, subject, predicate
    OSP,
    /// object, predicate, subject
    OPS,
}

impl Permutation {
    /// All six permutations in build order.
    pub const ALL: [Permutation; 6] = [
        Permutation::SPO,
        Permutation::SOP,
        Permutation::PSO,
        Permutation::POS,
        Permutation::OSP,
        Permutation::OPS,
    ];

    /// Slot order as indexes into `[s, p, o]`.
    #[inline]
    fn order(self) -> [usize; 3] {
        match self {
            Permutation::SPO => [0, 1, 2],
            Permutation::SOP => [0, 2, 1],
            Permutation::PSO => [1, 0, 2],
            Permutation::POS => [1, 2, 0],
            Permutation::OSP => [2, 0, 1],
            Permutation::OPS => [2, 1, 0],
        }
    }

    /// The sort key of `t` under this permutation.
    #[inline]
    pub fn key(self, t: Triple) -> [TermId; 3] {
        let spo = t.spo();
        let ord = self.order();
        [spo[ord[0]], spo[ord[1]], spo[ord[2]]]
    }

    /// Chooses the permutation whose key prefix covers the bound slots of a
    /// pattern, so its matches form one contiguous sorted range.
    #[inline]
    pub fn for_pattern(pattern: &SlotPattern) -> Permutation {
        match pattern.bound_mask() {
            0b000 | 0b001 | 0b011 | 0b111 => Permutation::SPO,
            0b010 => Permutation::PSO,
            0b100 => Permutation::OSP,
            0b101 => Permutation::SOP,
            0b110 => Permutation::POS,
            _ => unreachable!("bound_mask is 3 bits"),
        }
    }

    /// The bound prefix of `pattern` in this permutation's slot order,
    /// inline (no allocation): the prefix values and their count (0–3).
    ///
    /// Unused tail slots are left at a fixed filler value and must not be
    /// compared — callers slice to `len`.
    #[inline]
    fn prefix(self, pattern: &SlotPattern) -> ([TermId; 3], usize) {
        let slots = [pattern.s, pattern.p, pattern.o];
        let mut out = [TermId::from_raw(0); 3];
        let mut len = 0;
        for slot_idx in self.order() {
            match slots[slot_idx] {
                Some(t) => {
                    out[len] = t;
                    len += 1;
                }
                None => break,
            }
        }
        (out, len)
    }
}

/// One permutation's sorted key column and aligned id column.
#[derive(Debug, Default)]
struct PermColumn {
    keys: Vec<[TermId; 3]>,
    ids: Vec<TripleId>,
}

impl PermColumn {
    fn build(perm: Permutation, triples: &[Triple]) -> PermColumn {
        // Materialize the key column once; sorting compares inline 12-byte
        // keys instead of recomputing `perm.key()` per comparison. Keys are
        // unique (the store deduplicates on (s, p, o)), so unstable sort
        // yields a deterministic order.
        let mut rows: Vec<([TermId; 3], TripleId)> = triples
            .iter()
            .enumerate()
            .map(|(i, t)| (perm.key(*t), TripleId(i as u32)))
            .collect();
        rows.sort_unstable();
        let mut keys = Vec::with_capacity(rows.len());
        let mut ids = Vec::with_capacity(rows.len());
        for (key, id) in rows {
            keys.push(key);
            ids.push(id);
        }
        PermColumn { keys, ids }
    }
}

/// Below this table size, building the six permutations sequentially is
/// faster than paying six thread spawns.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// The six columnar permutation indexes over a frozen triple table.
#[derive(Debug, Default)]
pub struct TripleIndex {
    perms: [PermColumn; 6],
}

impl TripleIndex {
    /// Builds all six permutations for `triples`.
    ///
    /// `triples[i]` is the triple with `TripleId(i as u32)`. Large tables
    /// build their permutations on six scoped threads.
    pub fn build(triples: &[Triple]) -> TripleIndex {
        let mut perms: [PermColumn; 6] = Default::default();
        if triples.len() < PARALLEL_BUILD_THRESHOLD {
            for (slot, perm) in Permutation::ALL.into_iter().enumerate() {
                perms[slot] = PermColumn::build(perm, triples);
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = Permutation::ALL
                    .into_iter()
                    .map(|perm| scope.spawn(move || PermColumn::build(perm, triples)))
                    .collect();
                for (slot, handle) in handles.into_iter().enumerate() {
                    perms[slot] = handle.join().expect("index build thread panicked");
                }
            });
        }
        TripleIndex { perms }
    }

    /// Returns the contiguous, sorted range of triple ids matching
    /// `pattern`. The range is over the permutation chosen by
    /// [`Permutation::for_pattern`]; the ids within it are in key order of
    /// that permutation, *not* in insertion order.
    ///
    /// Allocation-free: two `partition_point` calls over the inline key
    /// column.
    pub fn lookup(&self, pattern: &SlotPattern) -> &[TripleId] {
        let span = self.span(pattern);
        let perm = Permutation::for_pattern(pattern);
        &self.perms[perm as usize].ids[span]
    }

    /// The positions of `pattern`'s matches inside its permutation's
    /// columns. Because the posting index's anchored strata share the
    /// primary-key order of the SPO (subject-only) and OSP (object-only)
    /// permutations, this span doubles as the anchored group's range —
    /// the storage sharing that spares those strata a group directory.
    pub(crate) fn span(&self, pattern: &SlotPattern) -> std::ops::Range<usize> {
        let perm = Permutation::for_pattern(pattern);
        let col = &self.perms[perm as usize];
        let (prefix, len) = perm.prefix(pattern);
        if len == 0 {
            return 0..col.ids.len();
        }
        let prefix = &prefix[..len];
        let lo = col.keys.partition_point(|k| &k[..len] < prefix);
        let hi = lo + col.keys[lo..].partition_point(|k| &k[..len] <= prefix);
        lo..hi
    }

    /// Number of triples matching `pattern` (exact, via the range bounds).
    pub fn count(&self, pattern: &SlotPattern) -> usize {
        self.lookup(pattern).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    fn sample() -> Vec<Triple> {
        vec![
            Triple::new(tid(1), tid(10), tid(2)), // Einstein bornIn Ulm
            Triple::new(tid(2), tid(11), tid(3)), // Ulm locatedIn Germany
            Triple::new(tid(1), tid(12), tid(4)), // Einstein affiliation IAS
            Triple::new(tid(5), tid(10), tid(2)), // Other bornIn Ulm
            Triple::new(tid(1), tid(10), tid(6)), // Einstein bornIn X (noise)
        ]
    }

    #[test]
    fn permutation_choice_covers_bound_prefix() {
        for mask in 0u8..8 {
            let mk = |bit: u8| (mask & bit != 0).then(|| tid(0));
            let pat = SlotPattern::new(mk(1), mk(2), mk(4));
            let perm = Permutation::for_pattern(&pat);
            // Every bound slot must appear before every wildcard slot in the
            // permutation order for the range lookup to be contiguous.
            let order = perm.order();
            let bound = [pat.s.is_some(), pat.p.is_some(), pat.o.is_some()];
            let mut seen_wild = false;
            for slot in order {
                if bound[slot] {
                    assert!(!seen_wild, "mask {mask:#05b}: bound slot after wildcard");
                } else {
                    seen_wild = true;
                }
            }
        }
    }

    #[test]
    fn lookup_matches_linear_scan_for_every_shape() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let terms: Vec<Option<TermId>> = vec![None, Some(tid(1)), Some(tid(10)), Some(tid(2))];
        for &s in &terms {
            for &p in &terms {
                for &o in &terms {
                    let pat = SlotPattern::new(s, p, o);
                    let mut got: Vec<u32> = idx.lookup(&pat).iter().map(|t| t.0).collect();
                    got.sort_unstable();
                    let mut want: Vec<u32> = triples
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| pat.matches(**t))
                        .map(|(i, _)| i as u32)
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "pattern {pat}");
                }
            }
        }
    }

    #[test]
    fn lookup_range_is_in_permutation_key_order() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(10));
        let perm = Permutation::for_pattern(&pat);
        let keys: Vec<[TermId; 3]> = idx
            .lookup(&pat)
            .iter()
            .map(|&id| perm.key(triples[id.idx()]))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_equals_lookup_len() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(10));
        assert_eq!(idx.count(&pat), 3);
    }

    #[test]
    fn empty_table() {
        let triples: Vec<Triple> = Vec::new();
        let idx = TripleIndex::build(&triples);
        assert_eq!(idx.lookup(&SlotPattern::any()).len(), 0);
    }

    #[test]
    fn no_match_returns_empty_range() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(99));
        assert!(idx.lookup(&pat).is_empty());
    }

    #[test]
    fn parallel_build_agrees_with_sequential() {
        // Cross the parallel threshold and compare against matches().
        let n = PARALLEL_BUILD_THRESHOLD as u32 + 100;
        let triples: Vec<Triple> = (0..n)
            .map(|i| Triple::new(tid(i % 97), tid(i % 7), tid(i)))
            .collect();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(3));
        let got = idx.lookup(&pat).len();
        let want = triples.iter().filter(|t| pat.matches(**t)).count();
        assert_eq!(got, want);
    }
}
