//! Columnar permutation indexes over the triple table.
//!
//! # Layout
//!
//! Six sorted permutations (SPO, SOP, PSO, POS, OSP, OPS) make every shape
//! of [`SlotPattern`] answerable with a binary-searched contiguous range,
//! in the style of in-memory RDF stores (HDT, Hexastore). Each permutation
//! stores its rows in one of two layouts chosen at build time
//! ([`SegmentLayout`]):
//!
//! * **Flat** — a `Vec<[TermId; 3]>` *key column* holding the permuted
//!   keys inline, plus an aligned `Vec<TripleId>` *id column*. A probe
//!   touches only the key column — sequential 12-byte records, no pointer
//!   chase back into the triple table — and returns a borrowed slice of
//!   the id column. 16 bytes per triple per permutation.
//! * **Packed** — rows grouped into blocks of [`BLOCK`] (128). Each of
//!   the four columns (three key columns + the id column) is stored as
//!   bit-packed deltas from a per-block reference value, over one shared
//!   `u64` word stream. A sparse *selection directory* holds each
//!   block's first key, so a probe is a directory `partition_point` plus
//!   a binary search inside at most one block — `O(log n)` field reads,
//!   no allocation. Ids decode into a caller-supplied scratch buffer
//!   ([`TripleIndex::lookup_in`]) or an owned vector ([`MatchIds`]).
//!   Typical cost is 2–6 bytes per triple per permutation depending on
//!   key locality, a 3–6× reduction against Flat.
//!
//! Sort order is identical in both layouts: [`TermId`]'s ordering is the
//! ordering of its packed raw `u32` (kind bits high), so comparing raw
//! values compares terms.
//!
//! # Cost model
//!
//! * **Lookup**: two `partition_point` binary searches (Flat: over the
//!   key column; Packed: over the directory, then within one block).
//! * **Build**: each permutation materializes and sorts its rows once;
//!   permutations build on six scoped threads when the table is large
//!   enough to amortize spawning. Packing is a single append pass over
//!   the sorted rows.

use std::ops::Range;

use crate::pack::{bits_for, read_bits, BitWriter, SegmentLayout};
use crate::pattern::SlotPattern;
use crate::term::TermId;
use crate::triple::{Triple, TripleId};

/// Rows per packed block: the unit of delta encoding and of the sparse
/// selection directory.
pub const BLOCK: usize = 128;

/// One of the six orderings of (S, P, O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Permutation {
    /// subject, predicate, object
    SPO,
    /// subject, object, predicate
    SOP,
    /// predicate, subject, object
    PSO,
    /// predicate, object, subject
    POS,
    /// object, subject, predicate
    OSP,
    /// object, predicate, subject
    OPS,
}

impl Permutation {
    /// All six permutations in build order.
    pub const ALL: [Permutation; 6] = [
        Permutation::SPO,
        Permutation::SOP,
        Permutation::PSO,
        Permutation::POS,
        Permutation::OSP,
        Permutation::OPS,
    ];

    /// Slot order as indexes into `[s, p, o]`.
    #[inline]
    fn order(self) -> [usize; 3] {
        match self {
            Permutation::SPO => [0, 1, 2],
            Permutation::SOP => [0, 2, 1],
            Permutation::PSO => [1, 0, 2],
            Permutation::POS => [1, 2, 0],
            Permutation::OSP => [2, 0, 1],
            Permutation::OPS => [2, 1, 0],
        }
    }

    /// The sort key of `t` under this permutation.
    #[inline]
    pub fn key(self, t: Triple) -> [TermId; 3] {
        let spo = t.spo();
        let ord = self.order();
        [spo[ord[0]], spo[ord[1]], spo[ord[2]]]
    }

    /// Chooses the permutation whose key prefix covers the bound slots of a
    /// pattern, so its matches form one contiguous sorted range.
    #[inline]
    pub fn for_pattern(pattern: &SlotPattern) -> Permutation {
        match pattern.bound_mask() {
            0b010 => Permutation::PSO,
            0b100 => Permutation::OSP,
            0b101 => Permutation::SOP,
            0b110 => Permutation::POS,
            // 0b000 | 0b001 | 0b011 | 0b111 and any wider mask: the
            // subject-primary permutation covers them all.
            _ => Permutation::SPO,
        }
    }

    /// The bound prefix of `pattern` in this permutation's slot order,
    /// inline (no allocation): the prefix values and their count (0–3).
    ///
    /// Unused tail slots are left at a fixed filler value and must not be
    /// compared — callers slice to `len`.
    #[inline]
    fn prefix(self, pattern: &SlotPattern) -> ([TermId; 3], usize) {
        let slots = [pattern.s, pattern.p, pattern.o];
        let mut out = [TermId::from_raw(0); 3];
        let mut len = 0;
        for slot_idx in self.order() {
            match slots[slot_idx] {
                Some(t) => {
                    out[len] = t;
                    len += 1;
                }
                None => break,
            }
        }
        (out, len)
    }
}

/// The ids matching a pattern: a borrowed slice of a Flat id column, or
/// an owned vector decoded from a Packed one. Dereferences to
/// `[TripleId]`, so `.iter()`, `.len()`, `.first()` and indexing all
/// work as on the slice the Flat layout used to return.
#[derive(Debug)]
pub enum MatchIds<'a> {
    /// Borrowed directly from a Flat permutation's id column.
    Borrowed(&'a [TripleId]),
    /// Decoded from a Packed permutation's bit stream.
    Owned(Vec<TripleId>),
}

impl std::ops::Deref for MatchIds<'_> {
    type Target = [TripleId];
    #[inline]
    fn deref(&self) -> &[TripleId] {
        match self {
            MatchIds::Borrowed(s) => s,
            MatchIds::Owned(v) => v,
        }
    }
}

impl<'a> IntoIterator for &'a MatchIds<'_> {
    type Item = &'a TripleId;
    type IntoIter = std::slice::Iter<'a, TripleId>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Per-block packing metadata: the bit offset of the block's payload in
/// the shared word stream, and reference value + field width for each
/// of the four columns (key columns 0–2, id column 3).
#[derive(Debug, Clone)]
struct BlockMeta {
    bit: u64,
    min: [u32; 4],
    width: [u8; 4],
}

/// One permutation's rows in the Packed layout.
#[derive(Debug, Default)]
struct PackedPerm {
    len: usize,
    /// First key of each block — the sparse selection directory.
    dir: Vec<[u32; 3]>,
    blocks: Vec<BlockMeta>,
    words: Vec<u64>,
}

impl PackedPerm {
    fn build(rows: &[([TermId; 3], TripleId)]) -> PackedPerm {
        let n_blocks = rows.len().div_ceil(BLOCK);
        let mut dir = Vec::with_capacity(n_blocks);
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut w = BitWriter::new();
        for chunk in rows.chunks(BLOCK) {
            let first = chunk[0].0;
            dir.push([first[0].raw(), first[1].raw(), first[2].raw()]);
            let mut min = [u32::MAX; 4];
            let mut max = [0u32; 4];
            for (key, id) in chunk {
                for c in 0..3 {
                    let v = key[c].raw();
                    min[c] = min[c].min(v);
                    max[c] = max[c].max(v);
                }
                min[3] = min[3].min(id.0);
                max[3] = max[3].max(id.0);
            }
            let mut width = [0u8; 4];
            for c in 0..4 {
                width[c] = bits_for(u64::from(max[c] - min[c]));
            }
            let bit = w.len_bits();
            for c in 0..3 {
                for (key, _) in chunk {
                    w.push(u64::from(key[c].raw() - min[c]), width[c]);
                }
            }
            for (_, id) in chunk {
                w.push(u64::from(id.0 - min[3]), width[3]);
            }
            blocks.push(BlockMeta { bit, min, width });
        }
        PackedPerm {
            len: rows.len(),
            dir,
            blocks,
            words: w.finish(),
        }
    }

    /// Rows in block `b` (the last block may be partial).
    #[inline]
    fn rows_in(&self, b: usize) -> usize {
        BLOCK.min(self.len - b * BLOCK)
    }

    /// Decoded value of column `c` (0–2 keys, 3 id) at local row `r` of
    /// block `b`. Out-of-range blocks degrade to 0 — packed readers sit
    /// on serving paths and must not panic.
    #[inline]
    fn field(&self, b: usize, r: usize, c: usize) -> u32 {
        let Some(m) = self.blocks.get(b) else { return 0 };
        let rows = self.rows_in(b) as u64;
        let mut bit = m.bit;
        for prev in 0..c {
            bit += rows * u64::from(m.width[prev]);
        }
        bit += r as u64 * u64::from(m.width[c]);
        m.min[c].wrapping_add(read_bits(&self.words, bit, m.width[c]) as u32)
    }

    /// Compares row `(b, r)`'s key against `prefix` on the first
    /// `prefix.len()` columns.
    #[inline]
    fn cmp_prefix(&self, b: usize, r: usize, prefix: &[u32]) -> std::cmp::Ordering {
        for (c, &p) in prefix.iter().enumerate() {
            match self.field(b, r, c).cmp(&p) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Position of the first row whose key prefix compares `> prefix`
    /// (`inclusive`) or `>= prefix` (`!inclusive`): the two
    /// `partition_point` bounds of the classic flat probe, served by a
    /// directory probe plus a binary search inside one block.
    fn bound(&self, prefix: &[u32], inclusive: bool) -> usize {
        let len = prefix.len();
        let below = |ord: std::cmp::Ordering| {
            if inclusive {
                ord != std::cmp::Ordering::Greater
            } else {
                ord == std::cmp::Ordering::Less
            }
        };
        // First block whose *first key* is not below the prefix: the
        // boundary row lies in the block before it (or at its start).
        let b = self
            .dir
            .partition_point(|first| below(cmp_slice(&first[..len], prefix)))
            .saturating_sub(1);
        let start = b * BLOCK;
        if start >= self.len {
            return self.len;
        }
        let (mut lo, mut hi) = (0usize, self.rows_in(b));
        while lo < hi {
            let mid = (lo + hi) / 2;
            if below(self.cmp_prefix(b, mid, prefix)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        start + lo
    }

    fn span(&self, prefix: &[u32]) -> Range<usize> {
        if prefix.is_empty() {
            return 0..self.len;
        }
        self.bound(prefix, false)..self.bound(prefix, true)
    }

    /// Decodes the id column over `span` into `out` (cleared first).
    fn decode_ids(&self, span: Range<usize>, out: &mut Vec<TripleId>) {
        out.clear();
        out.reserve(span.len());
        for i in span {
            out.push(TripleId(self.field(i / BLOCK, i % BLOCK, 3)));
        }
    }

    fn heap_bytes(&self) -> (usize, usize) {
        let dir_bytes = self.dir.capacity() * std::mem::size_of::<[u32; 3]>()
            + self.blocks.capacity() * std::mem::size_of::<BlockMeta>();
        (self.words.capacity() * 8, dir_bytes)
    }
}

/// Lexicographic comparison of two raw-key slices.
#[inline]
fn cmp_slice(a: &[u32], b: &[u32]) -> std::cmp::Ordering {
    a.cmp(b)
}

/// One permutation's sorted rows, in either layout.
#[derive(Debug)]
enum PermColumn {
    /// Inline key column + aligned id column (borrowable slices).
    Flat {
        keys: Vec<[TermId; 3]>,
        ids: Vec<TripleId>,
    },
    /// Delta-encoded bit-packed blocks behind a selection directory.
    Packed(PackedPerm),
}

impl Default for PermColumn {
    fn default() -> PermColumn {
        PermColumn::Flat {
            keys: Vec::new(),
            ids: Vec::new(),
        }
    }
}

impl PermColumn {
    fn build(perm: Permutation, triples: &[Triple], layout: SegmentLayout) -> PermColumn {
        // Materialize the key column once; sorting compares inline 12-byte
        // keys instead of recomputing `perm.key()` per comparison. Keys are
        // unique (the store deduplicates on (s, p, o)), so unstable sort
        // yields a deterministic order.
        let mut rows: Vec<([TermId; 3], TripleId)> = triples
            .iter()
            .enumerate()
            .map(|(i, t)| (perm.key(*t), TripleId(i as u32)))
            .collect();
        rows.sort_unstable();
        match layout {
            SegmentLayout::Flat => {
                let mut keys = Vec::with_capacity(rows.len());
                let mut ids = Vec::with_capacity(rows.len());
                for (key, id) in rows {
                    keys.push(key);
                    ids.push(id);
                }
                PermColumn::Flat { keys, ids }
            }
            SegmentLayout::Packed => PermColumn::Packed(PackedPerm::build(&rows)),
        }
    }

    fn len(&self) -> usize {
        match self {
            PermColumn::Flat { ids, .. } => ids.len(),
            PermColumn::Packed(p) => p.len,
        }
    }
}

/// Below this table size, building the six permutations sequentially is
/// faster than paying six thread spawns.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// The six columnar permutation indexes over a frozen triple table.
#[derive(Debug, Default)]
pub struct TripleIndex {
    perms: [PermColumn; 6],
    layout: SegmentLayout,
}

impl TripleIndex {
    /// Builds all six permutations for `triples` in the Flat layout.
    ///
    /// `triples[i]` is the triple with `TripleId(i as u32)`. Large tables
    /// build their permutations on six scoped threads.
    pub fn build(triples: &[Triple]) -> TripleIndex {
        TripleIndex::build_with(triples, SegmentLayout::Flat)
    }

    /// Builds all six permutations in the requested [`SegmentLayout`].
    pub fn build_with(triples: &[Triple], layout: SegmentLayout) -> TripleIndex {
        let mut perms: [PermColumn; 6] = Default::default();
        if triples.len() < PARALLEL_BUILD_THRESHOLD {
            for (slot, perm) in Permutation::ALL.into_iter().enumerate() {
                perms[slot] = PermColumn::build(perm, triples, layout);
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = Permutation::ALL
                    .into_iter()
                    .map(|perm| scope.spawn(move || PermColumn::build(perm, triples, layout)))
                    .collect();
                for (slot, handle) in handles.into_iter().enumerate() {
                    // lint:allow(no-panic-hot-path): build-time join — a panicked permutation build has no index to serve and must surface at freeze
                    perms[slot] = handle.join().expect("index build thread panicked");
                }
            });
        }
        TripleIndex { perms, layout }
    }

    /// The layout this index was built with.
    #[inline]
    pub fn layout(&self) -> SegmentLayout {
        self.layout
    }

    /// Returns the contiguous, sorted range of triple ids matching
    /// `pattern`. The range is over the permutation chosen by
    /// [`Permutation::for_pattern`]; the ids within it are in key order of
    /// that permutation, *not* in insertion order.
    ///
    /// Flat permutations return a borrowed slice (allocation-free);
    /// Packed ones decode the span into an owned vector. Join loops that
    /// probe repeatedly should prefer [`TripleIndex::lookup_in`] with a
    /// reused scratch buffer.
    pub fn lookup(&self, pattern: &SlotPattern) -> MatchIds<'_> {
        let span = self.span(pattern);
        match &self.perms[Permutation::for_pattern(pattern) as usize] {
            PermColumn::Flat { ids, .. } => MatchIds::Borrowed(&ids[span]),
            PermColumn::Packed(p) => {
                let mut out = Vec::new();
                p.decode_ids(span, &mut out);
                MatchIds::Owned(out)
            }
        }
    }

    /// [`TripleIndex::lookup`] into a caller-owned scratch buffer: Flat
    /// permutations still return the borrowed id column (the buffer is
    /// untouched), Packed ones decode into `buf` — so a join loop that
    /// reuses its buffer performs no per-probe allocation in either
    /// layout.
    pub fn lookup_in<'a>(
        &'a self,
        pattern: &SlotPattern,
        buf: &'a mut Vec<TripleId>,
    ) -> &'a [TripleId] {
        let span = self.span(pattern);
        match &self.perms[Permutation::for_pattern(pattern) as usize] {
            PermColumn::Flat { ids, .. } => &ids[span],
            PermColumn::Packed(p) => {
                p.decode_ids(span, buf);
                buf
            }
        }
    }

    /// The positions of `pattern`'s matches inside its permutation's
    /// columns. Because the posting index's anchored strata share the
    /// primary-key order of the SPO (subject-only) and OSP (object-only)
    /// permutations, this span doubles as the anchored group's range —
    /// the storage sharing that spares those strata a group directory.
    pub(crate) fn span(&self, pattern: &SlotPattern) -> Range<usize> {
        let perm = Permutation::for_pattern(pattern);
        let col = &self.perms[perm as usize];
        let (prefix, len) = perm.prefix(pattern);
        if len == 0 {
            return 0..col.len();
        }
        match col {
            PermColumn::Flat { keys, .. } => {
                let prefix = &prefix[..len];
                let lo = keys.partition_point(|k| &k[..len] < prefix);
                let hi = lo + keys[lo..].partition_point(|k| &k[..len] <= prefix);
                lo..hi
            }
            PermColumn::Packed(p) => {
                let raw = [prefix[0].raw(), prefix[1].raw(), prefix[2].raw()];
                p.span(&raw[..len])
            }
        }
    }

    /// Number of triples matching `pattern` (exact, via the range bounds
    /// only — no id decode in either layout).
    pub fn count(&self, pattern: &SlotPattern) -> usize {
        self.span(pattern).len()
    }

    /// Heap bytes held by the six permutations, split into
    /// `(columns, directories)`: the key/id payloads versus the sparse
    /// selection directories and block metadata (Flat has no
    /// directories).
    pub fn heap_bytes(&self) -> (usize, usize) {
        let mut columns = 0;
        let mut directories = 0;
        for perm in &self.perms {
            match perm {
                PermColumn::Flat { keys, ids } => {
                    columns += keys.capacity() * std::mem::size_of::<[TermId; 3]>()
                        + ids.capacity() * std::mem::size_of::<TripleId>();
                }
                PermColumn::Packed(p) => {
                    let (c, d) = p.heap_bytes();
                    columns += c;
                    directories += d;
                }
            }
        }
        (columns, directories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    fn sample() -> Vec<Triple> {
        vec![
            Triple::new(tid(1), tid(10), tid(2)), // Einstein bornIn Ulm
            Triple::new(tid(2), tid(11), tid(3)), // Ulm locatedIn Germany
            Triple::new(tid(1), tid(12), tid(4)), // Einstein affiliation IAS
            Triple::new(tid(5), tid(10), tid(2)), // Other bornIn Ulm
            Triple::new(tid(1), tid(10), tid(6)), // Einstein bornIn X (noise)
        ]
    }

    #[test]
    fn permutation_choice_covers_bound_prefix() {
        for mask in 0u8..8 {
            let mk = |bit: u8| (mask & bit != 0).then(|| tid(0));
            let pat = SlotPattern::new(mk(1), mk(2), mk(4));
            let perm = Permutation::for_pattern(&pat);
            // Every bound slot must appear before every wildcard slot in the
            // permutation order for the range lookup to be contiguous.
            let order = perm.order();
            let bound = [pat.s.is_some(), pat.p.is_some(), pat.o.is_some()];
            let mut seen_wild = false;
            for slot in order {
                if bound[slot] {
                    assert!(!seen_wild, "mask {mask:#05b}: bound slot after wildcard");
                } else {
                    seen_wild = true;
                }
            }
        }
    }

    #[test]
    fn lookup_matches_linear_scan_for_every_shape() {
        let triples = sample();
        for layout in [SegmentLayout::Flat, SegmentLayout::Packed] {
            let idx = TripleIndex::build_with(&triples, layout);
            let terms: Vec<Option<TermId>> = vec![None, Some(tid(1)), Some(tid(10)), Some(tid(2))];
            for &s in &terms {
                for &p in &terms {
                    for &o in &terms {
                        let pat = SlotPattern::new(s, p, o);
                        let mut got: Vec<u32> = idx.lookup(&pat).iter().map(|t| t.0).collect();
                        got.sort_unstable();
                        let mut want: Vec<u32> = triples
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| pat.matches(**t))
                            .map(|(i, _)| i as u32)
                            .collect();
                        want.sort_unstable();
                        assert_eq!(got, want, "pattern {pat} ({layout:?})");
                    }
                }
            }
        }
    }

    #[test]
    fn lookup_range_is_in_permutation_key_order() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(10));
        let perm = Permutation::for_pattern(&pat);
        let keys: Vec<[TermId; 3]> = idx
            .lookup(&pat)
            .iter()
            .map(|&id| perm.key(triples[id.idx()]))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_equals_lookup_len() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(10));
        assert_eq!(idx.count(&pat), 3);
    }

    #[test]
    fn empty_table() {
        let triples: Vec<Triple> = Vec::new();
        for layout in [SegmentLayout::Flat, SegmentLayout::Packed] {
            let idx = TripleIndex::build_with(&triples, layout);
            assert_eq!(idx.lookup(&SlotPattern::any()).len(), 0);
        }
    }

    #[test]
    fn no_match_returns_empty_range() {
        let triples = sample();
        for layout in [SegmentLayout::Flat, SegmentLayout::Packed] {
            let idx = TripleIndex::build_with(&triples, layout);
            let pat = SlotPattern::with_p(tid(99));
            assert!(idx.lookup(&pat).is_empty());
        }
    }

    #[test]
    fn parallel_build_agrees_with_sequential() {
        // Cross the parallel threshold and compare against matches().
        let n = PARALLEL_BUILD_THRESHOLD as u32 + 100;
        let triples: Vec<Triple> = (0..n)
            .map(|i| Triple::new(tid(i % 97), tid(i % 7), tid(i)))
            .collect();
        for layout in [SegmentLayout::Flat, SegmentLayout::Packed] {
            let idx = TripleIndex::build_with(&triples, layout);
            let pat = SlotPattern::with_p(tid(3));
            let got = idx.lookup(&pat).len();
            let want = triples.iter().filter(|t| pat.matches(**t)).count();
            assert_eq!(got, want);
        }
    }

    /// Packed probes agree with Flat across block boundaries: a table
    /// several blocks long, shapes anchored at every subject.
    #[test]
    fn packed_agrees_with_flat_across_blocks() {
        let triples: Vec<Triple> = (0..(BLOCK as u32 * 5 + 17))
            .map(|i| Triple::new(tid(i % 211), tid(i % 13), tid(i * 7 % 509)))
            .collect();
        let flat = TripleIndex::build_with(&triples, SegmentLayout::Flat);
        let packed = TripleIndex::build_with(&triples, SegmentLayout::Packed);
        let mut buf = Vec::new();
        for s in 0..211u32 {
            for pat in [
                SlotPattern::new(Some(tid(s)), None, None),
                SlotPattern::new(Some(tid(s)), Some(tid(s % 13)), None),
                SlotPattern::new(None, None, Some(tid(s))),
            ] {
                assert_eq!(flat.span(&pat), packed.span(&pat), "span {pat}");
                let want: Vec<TripleId> = flat.lookup(&pat).to_vec();
                assert_eq!(&*packed.lookup(&pat), &want[..], "lookup {pat}");
                assert_eq!(packed.lookup_in(&pat, &mut buf), &want[..], "lookup_in {pat}");
            }
        }
    }

    #[test]
    fn packed_shrinks_the_index() {
        let triples: Vec<Triple> = (0..20_000u32)
            .map(|i| Triple::new(tid(i % 2003), tid(i % 17), tid(i * 31 % 4001)))
            .collect();
        let (flat_cols, flat_dirs) =
            TripleIndex::build_with(&triples, SegmentLayout::Flat).heap_bytes();
        let (packed_cols, packed_dirs) =
            TripleIndex::build_with(&triples, SegmentLayout::Packed).heap_bytes();
        assert_eq!(flat_dirs, 0);
        let flat_total = flat_cols + flat_dirs;
        let packed_total = packed_cols + packed_dirs;
        assert!(
            packed_total * 2 < flat_total,
            "packed {packed_total} vs flat {flat_total}"
        );
    }
}
