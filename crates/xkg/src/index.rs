//! Permutation indexes over the triple table.
//!
//! Six sorted permutations (SPO, SOP, PSO, POS, OSP, OPS) make every shape
//! of [`SlotPattern`] answerable with a binary-searched contiguous range,
//! in the style of in-memory RDF stores (HDT, Hexastore). Each permutation
//! is a `Vec<TripleId>` sorted by the permuted key, so the whole index adds
//! 24 bytes per triple.

use crate::pattern::SlotPattern;
use crate::term::TermId;
use crate::triple::{Triple, TripleId};

/// One of the six orderings of (S, P, O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Permutation {
    /// subject, predicate, object
    SPO,
    /// subject, object, predicate
    SOP,
    /// predicate, subject, object
    PSO,
    /// predicate, object, subject
    POS,
    /// object, subject, predicate
    OSP,
    /// object, predicate, subject
    OPS,
}

impl Permutation {
    /// All six permutations in build order.
    pub const ALL: [Permutation; 6] = [
        Permutation::SPO,
        Permutation::SOP,
        Permutation::PSO,
        Permutation::POS,
        Permutation::OSP,
        Permutation::OPS,
    ];

    /// Slot order as indexes into `[s, p, o]`.
    #[inline]
    fn order(self) -> [usize; 3] {
        match self {
            Permutation::SPO => [0, 1, 2],
            Permutation::SOP => [0, 2, 1],
            Permutation::PSO => [1, 0, 2],
            Permutation::POS => [1, 2, 0],
            Permutation::OSP => [2, 0, 1],
            Permutation::OPS => [2, 1, 0],
        }
    }

    /// The sort key of `t` under this permutation.
    #[inline]
    pub fn key(self, t: Triple) -> [TermId; 3] {
        let spo = t.spo();
        let ord = self.order();
        [spo[ord[0]], spo[ord[1]], spo[ord[2]]]
    }

    /// Chooses the permutation whose key prefix covers the bound slots of a
    /// pattern, so its matches form one contiguous sorted range.
    #[inline]
    pub fn for_pattern(pattern: &SlotPattern) -> Permutation {
        match pattern.bound_mask() {
            0b000 | 0b001 | 0b011 | 0b111 => Permutation::SPO,
            0b010 => Permutation::PSO,
            0b100 => Permutation::OSP,
            0b101 => Permutation::SOP,
            0b110 => Permutation::POS,
            _ => unreachable!("bound_mask is 3 bits"),
        }
    }

    /// The bound prefix of `pattern` in this permutation's slot order.
    /// Returns the prefix values (length 0–3).
    fn prefix(self, pattern: &SlotPattern) -> Vec<TermId> {
        let slots = [pattern.s, pattern.p, pattern.o];
        let mut out = Vec::with_capacity(3);
        for slot_idx in self.order() {
            match slots[slot_idx] {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }
}

/// The six permutation indexes over a frozen triple table.
#[derive(Debug, Default)]
pub struct TripleIndex {
    perms: [Vec<TripleId>; 6],
}

impl TripleIndex {
    /// Builds all six permutations for `triples`.
    ///
    /// `triples[i]` is the triple with `TripleId(i as u32)`.
    pub fn build(triples: &[Triple]) -> TripleIndex {
        let base: Vec<TripleId> = (0..triples.len())
            .map(|i| TripleId(i as u32))
            .collect();
        let mut perms: [Vec<TripleId>; 6] = Default::default();
        for (slot, perm) in Permutation::ALL.into_iter().enumerate() {
            let mut ids = base.clone();
            ids.sort_unstable_by_key(|id| perm.key(triples[id.idx()]));
            perms[slot] = ids;
        }
        TripleIndex { perms }
    }

    #[inline]
    fn perm_slice(&self, perm: Permutation) -> &[TripleId] {
        &self.perms[perm as usize]
    }

    /// Returns the contiguous, sorted range of triple ids matching
    /// `pattern`. The range is over the permutation chosen by
    /// [`Permutation::for_pattern`]; the ids within it are in key order of
    /// that permutation, *not* in insertion order.
    pub fn lookup<'a>(&'a self, triples: &[Triple], pattern: &SlotPattern) -> &'a [TripleId] {
        let perm = Permutation::for_pattern(pattern);
        let ids = self.perm_slice(perm);
        let prefix = perm.prefix(pattern);
        if prefix.is_empty() {
            return ids;
        }
        let key_prefix = |id: &TripleId| -> Vec<TermId> {
            perm.key(triples[id.idx()])[..prefix.len()].to_vec()
        };
        let lo = ids.partition_point(|id| key_prefix(id) < prefix);
        let hi = ids.partition_point(|id| key_prefix(id) <= prefix);
        &ids[lo..hi]
    }

    /// Number of triples matching `pattern` (exact, via the range bounds).
    pub fn count(&self, triples: &[Triple], pattern: &SlotPattern) -> usize {
        self.lookup(triples, pattern).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    fn sample() -> Vec<Triple> {
        vec![
            Triple::new(tid(1), tid(10), tid(2)), // Einstein bornIn Ulm
            Triple::new(tid(2), tid(11), tid(3)), // Ulm locatedIn Germany
            Triple::new(tid(1), tid(12), tid(4)), // Einstein affiliation IAS
            Triple::new(tid(5), tid(10), tid(2)), // Other bornIn Ulm
            Triple::new(tid(1), tid(10), tid(6)), // Einstein bornIn X (noise)
        ]
    }

    #[test]
    fn permutation_choice_covers_bound_prefix() {
        for mask in 0u8..8 {
            let mk = |bit: u8| (mask & bit != 0).then(|| tid(0));
            let pat = SlotPattern::new(mk(1), mk(2), mk(4));
            let perm = Permutation::for_pattern(&pat);
            // Every bound slot must appear before every wildcard slot in the
            // permutation order for the range lookup to be contiguous.
            let order = perm.order();
            let bound = [pat.s.is_some(), pat.p.is_some(), pat.o.is_some()];
            let mut seen_wild = false;
            for slot in order {
                if bound[slot] {
                    assert!(!seen_wild, "mask {mask:#05b}: bound slot after wildcard");
                } else {
                    seen_wild = true;
                }
            }
        }
    }

    #[test]
    fn lookup_matches_linear_scan_for_every_shape() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let terms: Vec<Option<TermId>> = vec![None, Some(tid(1)), Some(tid(10)), Some(tid(2))];
        for &s in &terms {
            for &p in &terms {
                for &o in &terms {
                    let pat = SlotPattern::new(s, p, o);
                    let mut got: Vec<u32> =
                        idx.lookup(&triples, &pat).iter().map(|t| t.0).collect();
                    got.sort_unstable();
                    let mut want: Vec<u32> = triples
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| pat.matches(**t))
                        .map(|(i, _)| i as u32)
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "pattern {pat}");
                }
            }
        }
    }

    #[test]
    fn count_equals_lookup_len() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(10));
        assert_eq!(idx.count(&triples, &pat), 3);
    }

    #[test]
    fn empty_table() {
        let triples: Vec<Triple> = Vec::new();
        let idx = TripleIndex::build(&triples);
        assert_eq!(idx.lookup(&triples, &SlotPattern::any()).len(), 0);
    }

    #[test]
    fn no_match_returns_empty_range() {
        let triples = sample();
        let idx = TripleIndex::build(&triples);
        let pat = SlotPattern::with_p(tid(99));
        assert!(idx.lookup(&triples, &pat).is_empty());
    }
}
