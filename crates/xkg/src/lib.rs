//! # trinit-xkg — extended knowledge graph store
//!
//! The storage substrate of the TriniT reproduction (Yahya et al.,
//! *Exploratory Querying of Extended Knowledge Graphs*, PVLDB 9(13), 2016).
//!
//! An **extended knowledge graph (XKG)** combines a curated KG (canonical
//! resources, e.g. Yago2s in the paper) with *textual token triples*
//! produced by Open Information Extraction, where any of the S/P/O slots
//! may be a text phrase instead of a canonical resource (paper §2).
//!
//! This crate provides:
//!
//! * [`TermDict`] — interning of resources, tokens, and literals into
//!   compact [`TermId`]s;
//! * [`XkgBuilder`] / [`XkgStore`] — a deduplicating triple store with
//!   per-fact [`Provenance`] (stratum, confidence, support, sources);
//! * six columnar permutation indexes ([`index::TripleIndex`]) answering
//!   every [`SlotPattern`] shape with an allocation-free binary-searched
//!   range over inline keys;
//! * [`PostingIndex`] / [`PostingList`] — build-time score-sorted access
//!   to a pattern's matches, the primitive required by the incremental
//!   top-k processor (paper §4); predicate-only, unbound, and anchored
//!   (subject-/object-bound) patterns are served as borrowed slices
//!   without per-query sorting, and the remaining shapes filter an
//!   already-sorted group — no query ever sorts post-build;
//! * [`stats`] — predicate statistics and the `args(p)` sets used by the
//!   relaxation miner (paper §3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dict;
pub mod index;
pub mod pack;
pub mod pattern;
pub mod posting;
pub mod segment;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;

pub use dict::TermDict;
pub use index::MatchIds;
pub use pack::SegmentLayout;
pub use pattern::SlotPattern;
pub use posting::{EntriesRef, Posting, PostingIndex, PostingList, ServeKind, SharedParts};
pub use segment::SegmentedStore;
pub use stats::{args_pairs, cardinality, PredicateStats, StorageBytes, StoreStats};
pub use store::{XkgBuilder, XkgError, XkgStore};
pub use term::{TermId, TermKind};
pub use triple::{GraphTag, Provenance, SourceId, Triple, TripleId};
