//! Store statistics: predicate inventory, argument sets, selectivity.
//!
//! The relaxation miner (paper §3) needs `args(p)` — the set of
//! (subject, object) pairs connected by predicate `p` in the XKG — and the
//! query planner needs cardinality estimates. Both are derived from the
//! store's precomputed posting-index predicate groups, so they are exact
//! and never scan the full triple table per predicate.

use std::collections::HashMap;

use crate::pattern::SlotPattern;
use crate::store::XkgStore;
use crate::term::TermId;
use crate::triple::GraphTag;

/// Aggregate statistics for one predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateStats {
    /// The predicate term.
    pub predicate: TermId,
    /// Number of distinct triples under this predicate.
    pub triples: usize,
    /// Number of distinct subjects.
    pub distinct_subjects: usize,
    /// Number of distinct objects.
    pub distinct_objects: usize,
    /// Number of triples in the curated KG stratum.
    pub kg_triples: usize,
    /// Total emission weight (`Σ support × confidence`).
    pub total_weight: f64,
}

/// Exact heap byte accounting of a frozen store, per structure.
///
/// Computed from container capacities at the time of the call (the
/// store is immutable after freeze, so the numbers are stable). The
/// *index* share — what the [`SegmentLayout`](crate::SegmentLayout)
/// choice changes — is split from the payload tables (triples,
/// provenance, dictionary), which are layout-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageBytes {
    /// The six permutation key/id columns (flat or bit-packed).
    pub permutations: usize,
    /// The packed permutations' sparse selection directories.
    pub permutation_directories: usize,
    /// The four posting strata's entry columns (flat entries + prefix
    /// sums, or packed ids + quantized weight codes).
    pub posting_strata: usize,
    /// Posting directories: the predicate group map plus the packed
    /// layout's exact-f64 scaffolding (checkpoints, group totals).
    pub posting_directories: usize,
    /// The term dictionary (string payloads + tables).
    pub dict: usize,
    /// The raw triple table.
    pub triples: usize,
    /// Provenance records including their source lists.
    pub provenance: usize,
}

impl StorageBytes {
    /// Bytes spent on derived index structures — the share the segment
    /// layout controls (permutations + posting strata + directories).
    pub fn index_bytes(&self) -> usize {
        self.permutations
            + self.permutation_directories
            + self.posting_strata
            + self.posting_directories
    }

    /// Total heap bytes across every structure.
    pub fn total(&self) -> usize {
        self.index_bytes() + self.dict + self.triples + self.provenance
    }

    /// Index bytes per triple (0.0 for an empty store).
    pub fn bytes_per_triple(&self, triples: usize) -> f64 {
        if triples == 0 {
            0.0
        } else {
            self.index_bytes() as f64 / triples as f64
        }
    }
}

/// Statistics over an entire store.
#[derive(Debug, Default)]
pub struct StoreStats {
    by_predicate: HashMap<TermId, PredicateStats>,
    predicates: Vec<TermId>,
    storage: StorageBytes,
    triples: usize,
}

impl StoreStats {
    /// Computes statistics for every predicate in `store`, walking the
    /// posting index's per-predicate groups (each group is visited once;
    /// counts and total weights come straight from the group).
    pub fn compute(store: &XkgStore) -> StoreStats {
        let predicates: Vec<TermId> = store.predicates().to_vec();
        let mut by_predicate: HashMap<TermId, PredicateStats> =
            HashMap::with_capacity(predicates.len());
        let mut subs: Vec<TermId> = Vec::new();
        let mut objs: Vec<TermId> = Vec::new();
        for &p in &predicates {
            let group = store.predicate_group(p);
            let mut kg_triples = 0;
            let mut total_weight = 0.0f64;
            subs.clear();
            objs.clear();
            for e in group.entries() {
                let t = store.triple(e.triple);
                subs.push(t.s);
                objs.push(t.o);
                total_weight += e.weight;
                if store.provenance(e.triple).graph == GraphTag::Kg {
                    kg_triples += 1;
                }
            }
            subs.sort_unstable();
            subs.dedup();
            objs.sort_unstable();
            objs.dedup();
            by_predicate.insert(
                p,
                PredicateStats {
                    predicate: p,
                    triples: group.len(),
                    distinct_subjects: subs.len(),
                    distinct_objects: objs.len(),
                    kg_triples,
                    total_weight,
                },
            );
        }
        StoreStats {
            by_predicate,
            predicates,
            storage: store.storage_bytes(),
            triples: store.len(),
        }
    }

    /// All predicates in deterministic (term id) order.
    pub fn predicates(&self) -> &[TermId] {
        &self.predicates
    }

    /// Statistics for one predicate, if present in the store.
    pub fn get(&self, predicate: TermId) -> Option<&PredicateStats> {
        self.by_predicate.get(&predicate)
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Exact per-structure byte accounting captured at compute time.
    pub fn storage(&self) -> StorageBytes {
        self.storage
    }

    /// Index bytes per triple at compute time.
    pub fn bytes_per_triple(&self) -> f64 {
        self.storage.bytes_per_triple(self.triples)
    }
}

/// The exact set of (subject, object) pairs under predicate `p` — the
/// paper's `args(p)` (§3), deduplicated and sorted.
pub fn args_pairs(store: &XkgStore, p: TermId) -> Vec<(TermId, TermId)> {
    let mut pairs: Vec<(TermId, TermId)> = store
        .lookup(&SlotPattern::with_p(p))
        .iter()
        .map(|&id| {
            let t = store.triple(id);
            (t.s, t.o)
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Exact cardinality of a pattern; used by the query planner to order
/// joins most-selective-first.
pub fn cardinality(store: &XkgStore, pattern: &SlotPattern) -> usize {
    store.count(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::XkgBuilder;

    fn sample() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "p", "x");
        b.add_kg_resources("a", "p", "y");
        b.add_kg_resources("b", "p", "x");
        b.add_kg_resources("a", "q", "x");
        let s = b.dict_mut().resource("a");
        let p = b.dict_mut().token("said to");
        let o = b.dict_mut().resource("b");
        let src = b.intern_source("d0");
        b.add_extracted(s, p, o, 0.5, src);
        b.build()
    }

    #[test]
    fn predicate_inventory() {
        let store = sample();
        let stats = StoreStats::compute(&store);
        assert_eq!(stats.predicate_count(), 3);
        let p = store.resource("p").unwrap();
        let ps = stats.get(p).unwrap();
        assert_eq!(ps.triples, 3);
        assert_eq!(ps.distinct_subjects, 2);
        assert_eq!(ps.distinct_objects, 2);
        assert_eq!(ps.kg_triples, 3);
    }

    #[test]
    fn token_predicates_are_included() {
        let store = sample();
        let stats = StoreStats::compute(&store);
        let said = store.token("said to").unwrap();
        let ss = stats.get(said).unwrap();
        assert_eq!(ss.triples, 1);
        assert_eq!(ss.kg_triples, 0);
        assert!((ss.total_weight - 0.5).abs() < 1e-6);
    }

    #[test]
    fn args_pairs_are_sorted_and_distinct() {
        let store = sample();
        let p = store.resource("p").unwrap();
        let pairs = args_pairs(&store, p);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cardinality_matches_lookup() {
        let store = sample();
        let p = store.resource("p").unwrap();
        assert_eq!(cardinality(&store, &SlotPattern::with_p(p)), 3);
        assert_eq!(cardinality(&store, &SlotPattern::any()), 5);
    }

    #[test]
    fn empty_store_stats() {
        let store = XkgBuilder::new().build();
        let stats = StoreStats::compute(&store);
        assert_eq!(stats.predicate_count(), 0);
        assert!(stats.predicates().is_empty());
    }
}
