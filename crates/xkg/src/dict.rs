//! String interning dictionary for XKG terms.
//!
//! Every term string is interned exactly once per [`TermKind`]; the dense
//! index it receives is embedded in its [`TermId`]. The dictionary is
//! append-only: the XKG data model never deletes terms, which keeps ids
//! stable across the lifetime of a store.

use std::collections::HashMap;

use crate::term::{TermId, TermKind};

/// Per-kind interning table.
#[derive(Debug, Clone, Default)]
struct KindTable {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, u32>,
}

impl KindTable {
    fn intern(&mut self, text: &str) -> u32 {
        if let Some(&idx) = self.lookup.get(text) {
            return idx;
        }
        let idx = u32::try_from(self.strings.len()).expect("dictionary overflow");
        let boxed: Box<str> = text.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, idx);
        idx
    }

    fn get(&self, text: &str) -> Option<u32> {
        self.lookup.get(text).copied()
    }

    fn resolve(&self, idx: u32) -> Option<&str> {
        self.strings.get(idx as usize).map(AsRef::as_ref)
    }
}

/// Interning dictionary mapping term strings to [`TermId`]s and back.
///
/// # Examples
///
/// ```
/// use trinit_xkg::{TermDict, TermKind};
///
/// let mut dict = TermDict::new();
/// let einstein = dict.intern(TermKind::Resource, "AlbertEinstein");
/// let phrase = dict.intern(TermKind::Token, "won Nobel for");
///
/// assert_eq!(dict.resolve(einstein), Some("AlbertEinstein"));
/// assert_eq!(dict.resolve(phrase), Some("won Nobel for"));
/// assert_ne!(einstein, phrase);
/// // Interning is idempotent.
/// assert_eq!(dict.intern(TermKind::Resource, "AlbertEinstein"), einstein);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    tables: [KindTable; 3],
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Interns `text` under `kind`, returning its stable id.
    ///
    /// Repeated calls with the same `(kind, text)` return the same id.
    /// The same string interned under different kinds yields distinct ids:
    /// the resource `Princeton` and the token `'Princeton'` are different
    /// terms.
    pub fn intern(&mut self, kind: TermKind, text: &str) -> TermId {
        let idx = self.tables[kind as usize].intern(text);
        TermId::new(kind, idx)
    }

    /// Convenience for [`TermDict::intern`] with [`TermKind::Resource`].
    pub fn resource(&mut self, text: &str) -> TermId {
        self.intern(TermKind::Resource, text)
    }

    /// Convenience for [`TermDict::intern`] with [`TermKind::Token`].
    pub fn token(&mut self, text: &str) -> TermId {
        self.intern(TermKind::Token, text)
    }

    /// Convenience for [`TermDict::intern`] with [`TermKind::Literal`].
    pub fn literal(&mut self, text: &str) -> TermId {
        self.intern(TermKind::Literal, text)
    }

    /// Looks up an already-interned term without inserting.
    pub fn get(&self, kind: TermKind, text: &str) -> Option<TermId> {
        self.tables[kind as usize]
            .get(text)
            .map(|idx| TermId::new(kind, idx))
    }

    /// Resolves an id back to its string, or `None` if the id was not issued
    /// by this dictionary.
    pub fn resolve(&self, id: TermId) -> Option<&str> {
        self.tables[id.kind() as usize].resolve(id.index())
    }

    /// Number of distinct terms interned under `kind`.
    pub fn len_of(&self, kind: TermKind) -> usize {
        self.tables[kind as usize].strings.len()
    }

    /// Total number of distinct terms across all kinds.
    pub fn len(&self) -> usize {
        self.tables.iter().map(|t| t.strings.len()).sum()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes held by the dictionary: string payloads (stored twice,
    /// in the resolve vector and the lookup key) plus table capacities.
    pub fn heap_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.strings.iter().map(|s| s.len()).sum::<usize>() * 2
                    + t.strings.capacity() * std::mem::size_of::<Box<str>>()
                    + t.lookup.capacity()
                        * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<u32>())
            })
            .sum()
    }

    /// Iterates `(id, text)` pairs of a kind in interning order.
    pub fn iter_kind(&self, kind: TermKind) -> impl Iterator<Item = (TermId, &str)> {
        self.tables[kind as usize]
            .strings
            .iter()
            .enumerate()
            .map(move |(idx, s)| (TermId::new(kind, idx as u32), s.as_ref()))
    }

    /// Iterates all `(id, text)` pairs across kinds.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        TermKind::ALL.into_iter().flat_map(|k| self.iter_kind(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.resource("Ulm");
        let b = d.resource("Ulm");
        assert_eq!(a, b);
        assert_eq!(d.len_of(TermKind::Resource), 1);
    }

    #[test]
    fn kinds_are_separate_namespaces() {
        let mut d = TermDict::new();
        let r = d.resource("Princeton");
        let t = d.token("Princeton");
        let l = d.literal("Princeton");
        assert_ne!(r, t);
        assert_ne!(t, l);
        assert_eq!(d.resolve(r), Some("Princeton"));
        assert_eq!(d.resolve(t), Some("Princeton"));
        assert_eq!(d.resolve(l), Some("Princeton"));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = TermDict::new();
        assert_eq!(d.get(TermKind::Resource, "IAS"), None);
        assert_eq!(d.len(), 0);
        let id = d.resource("IAS");
        assert_eq!(d.get(TermKind::Resource, "IAS"), Some(id));
    }

    #[test]
    fn resolve_unknown_id_is_none() {
        let d = TermDict::new();
        assert_eq!(d.resolve(TermId::new(TermKind::Token, 9)), None);
    }

    #[test]
    fn iteration_preserves_interning_order() {
        let mut d = TermDict::new();
        d.resource("a");
        d.resource("b");
        d.token("c");
        let resources: Vec<&str> = d.iter_kind(TermKind::Resource).map(|(_, s)| s).collect();
        assert_eq!(resources, vec!["a", "b"]);
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn empty_dictionary() {
        let d = TermDict::new();
        assert!(d.is_empty());
        assert_eq!(d.iter().count(), 0);
    }
}
