//! The extended knowledge graph store.
//!
//! [`XkgBuilder`] accumulates deduplicated triples with merged provenance;
//! [`XkgBuilder::build`] freezes them into an [`XkgStore`] with all six
//! permutation indexes. The store is immutable after build, which is the
//! access pattern of the paper's system: the XKG is materialized offline
//! (KG load + Open IE extraction), then queried interactively.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::dict::TermDict;
use crate::index::{MatchIds, TripleIndex};
use crate::pack::SegmentLayout;
use crate::pattern::SlotPattern;
use crate::posting::{EntriesRef, GroupRef, PostingIndex, ServeKind};
use crate::stats::StorageBytes;
use crate::term::{TermId, TermKind};
use crate::triple::{GraphTag, Provenance, SourceId, Triple, TripleId};

/// Ingestion-time validation failure.
///
/// Emission weights are `support × confidence`; a non-finite confidence
/// would otherwise surface as a NaN/∞ weight deep inside the posting
/// index build. Validation happens where the fact enters the builder, so
/// the error names the offending triple instead of a sort comparator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum XkgError {
    /// The provenance carried a NaN or infinite confidence.
    NonFiniteConfidence {
        /// The triple whose provenance was rejected.
        triple: Triple,
        /// The offending confidence value.
        confidence: f32,
    },
}

impl fmt::Display for XkgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XkgError::NonFiniteConfidence { triple, confidence } => write!(
                f,
                "non-finite extraction confidence {confidence} for triple \
                 {:?} {:?} {:?}",
                triple.s, triple.p, triple.o
            ),
        }
    }
}

impl std::error::Error for XkgError {}

/// Accumulates triples and provenance before freezing into an [`XkgStore`].
#[derive(Debug, Clone, Default)]
pub struct XkgBuilder {
    dict: TermDict,
    triples: Vec<Triple>,
    prov: Vec<Provenance>,
    dedup: HashMap<Triple, TripleId>,
    sources: Vec<Box<str>>,
    source_lookup: HashMap<Box<str>, SourceId>,
}

impl XkgBuilder {
    /// Creates an empty builder.
    pub fn new() -> XkgBuilder {
        XkgBuilder::default()
    }

    /// Creates a builder whose interning context extends an existing
    /// store's: a clone of its append-only term dictionary plus its
    /// source table. Every id already issued by the originating store
    /// keeps resolving identically here, and new terms get fresh ids
    /// past the store's — which is what lets a mutable delta segment
    /// share a frozen base segment's id spaces (see
    /// [`SegmentedStore`](crate::SegmentedStore)).
    pub fn with_context(dict: TermDict, sources: &[Box<str>]) -> XkgBuilder {
        let source_lookup = sources
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), SourceId(i as u32)))
            .collect();
        XkgBuilder {
            dict,
            triples: Vec::new(),
            prov: Vec::new(),
            dedup: HashMap::new(),
            sources: sources.to_vec(),
            source_lookup,
        }
    }

    /// Mutable access to the term dictionary for interning.
    pub fn dict_mut(&mut self) -> &mut TermDict {
        &mut self.dict
    }

    /// Read access to the term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Interns a provenance source (document identifier / URL).
    pub fn intern_source(&mut self, name: &str) -> SourceId {
        if let Some(&id) = self.source_lookup.get(name) {
            return id;
        }
        let id = SourceId(u32::try_from(self.sources.len()).expect("source overflow"));
        let boxed: Box<str> = name.into();
        self.sources.push(boxed.clone());
        self.source_lookup.insert(boxed, id);
        id
    }

    /// Adds a triple with explicit provenance, merging with any existing
    /// record for the same `(s, p, o)`.
    ///
    /// Weights are sanitized rather than rejected: a negative confidence
    /// clamps to 0, a non-finite one collapses to the nearest bound (NaN
    /// and −∞ to 0, +∞ to 1). Use [`XkgBuilder::try_add`] to surface a
    /// typed error for non-finite confidences instead.
    pub fn add(&mut self, triple: Triple, mut prov: Provenance) -> TripleId {
        if !prov.confidence.is_finite() {
            prov.confidence = if prov.confidence == f32::INFINITY { 1.0 } else { 0.0 };
        }
        prov.confidence = prov.confidence.clamp(0.0, 1.0);
        self.insert(triple, prov)
    }

    /// Like [`XkgBuilder::add`], but a NaN or infinite confidence returns
    /// [`XkgError::NonFiniteConfidence`] instead of being sanitized.
    /// Negative confidences still clamp to 0 (a weight can never be
    /// negative).
    pub fn try_add(&mut self, triple: Triple, mut prov: Provenance) -> Result<TripleId, XkgError> {
        if !prov.confidence.is_finite() {
            return Err(XkgError::NonFiniteConfidence {
                triple,
                confidence: prov.confidence,
            });
        }
        prov.confidence = prov.confidence.clamp(0.0, 1.0);
        Ok(self.insert(triple, prov))
    }

    /// The dedup-merging insert behind both `add` flavours; `prov` must
    /// already carry a finite, clamped confidence.
    fn insert(&mut self, triple: Triple, prov: Provenance) -> TripleId {
        debug_assert!(prov.weight().is_finite(), "weights validated at ingestion");
        if let Some(&id) = self.dedup.get(&triple) {
            self.prov[id.idx()].absorb(&prov);
            return id;
        }
        let id = TripleId(u32::try_from(self.triples.len()).expect("triple overflow"));
        self.triples.push(triple);
        self.prov.push(prov);
        self.dedup.insert(triple, id);
        id
    }

    /// Adds a curated KG fact.
    pub fn add_kg(&mut self, s: TermId, p: TermId, o: TermId) -> TripleId {
        self.add(Triple::new(s, p, o), Provenance::kg())
    }

    /// Adds a curated KG fact from resource strings (subject and predicate
    /// are resources; the object is a resource as well).
    pub fn add_kg_resources(&mut self, s: &str, p: &str, o: &str) -> TripleId {
        let s = self.dict.resource(s);
        let p = self.dict.resource(p);
        let o = self.dict.resource(o);
        self.add_kg(s, p, o)
    }

    /// Adds a curated KG fact whose object is a literal (e.g. a date).
    pub fn add_kg_literal(&mut self, s: &str, p: &str, o: &str) -> TripleId {
        let s = self.dict.resource(s);
        let p = self.dict.resource(p);
        let o = self.dict.literal(o);
        self.add_kg(s, p, o)
    }

    /// Adds an Open IE extraction observed once in `source`. Non-finite
    /// confidences are sanitized (see [`XkgBuilder::add`]); use
    /// [`XkgBuilder::try_add_extracted`] to reject them instead.
    pub fn add_extracted(
        &mut self,
        s: TermId,
        p: TermId,
        o: TermId,
        confidence: f32,
        source: SourceId,
    ) -> TripleId {
        self.add(Triple::new(s, p, o), Provenance::extraction(confidence, source))
    }

    /// Adds an Open IE extraction, returning a typed error for a NaN or
    /// infinite confidence instead of panicking later inside the posting
    /// index build (negative confidences clamp to 0).
    pub fn try_add_extracted(
        &mut self,
        s: TermId,
        p: TermId,
        o: TermId,
        confidence: f32,
        source: SourceId,
    ) -> Result<TripleId, XkgError> {
        // Validate before `Provenance::extraction`'s clamp folds +∞ into
        // the legal range.
        if !confidence.is_finite() {
            return Err(XkgError::NonFiniteConfidence {
                triple: Triple::new(s, p, o),
                confidence,
            });
        }
        self.try_add(Triple::new(s, p, o), Provenance::extraction(confidence, source))
    }

    /// The accumulated triples in insertion order, parallel to
    /// [`XkgBuilder::provenances`].
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The accumulated provenance records, parallel to
    /// [`XkgBuilder::triples`].
    pub fn provenances(&self) -> &[Provenance] {
        &self.prov
    }

    /// The interned provenance sources in [`SourceId`] order.
    pub fn sources(&self) -> &[Box<str>] {
        &self.sources
    }

    /// Number of distinct triples accumulated so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if no triples have been added.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Freezes the builder into an immutable, fully indexed store: the six
    /// columnar permutation indexes, the score-sorted posting index, and
    /// per-stratum counts are all computed here, once. Uses the default
    /// [`SegmentLayout::Flat`]; see [`XkgBuilder::build_with`].
    pub fn build(self) -> XkgStore {
        self.build_with(SegmentLayout::Flat)
    }

    /// Freezes the builder with an explicit [`SegmentLayout`]: `Flat` for
    /// hot, constantly rebuilt segments (ingest deltas), `Packed` for
    /// frozen base segments where bytes/triple dominates. Query answers
    /// are bit-identical in both layouts.
    pub fn build_with(self, layout: SegmentLayout) -> XkgStore {
        let sources: Arc<[Box<str>]> = self.sources.into();
        XkgStore::freeze(Arc::new(self.dict), self.triples, self.prov, sources, layout)
    }

    /// Freezes the builder into `shards` independent [`XkgStore`]s that
    /// hash-partition the triples by **subject term**
    /// ([`TermId::shard_of`]): every triple lands in exactly one shard,
    /// and all triples sharing a subject are co-located. The shards share
    /// one term dictionary and one source table (`Arc`), so [`TermId`]s
    /// and [`SourceId`]s are globally consistent — a query parsed against
    /// any shard is valid against every shard.
    ///
    /// Each shard freezes its own permutation and posting indexes over
    /// its slice, exactly as [`XkgBuilder::build`] does for the whole
    /// store; relative triple order is preserved within a shard, so a
    /// shard's local [`TripleId`]s enumerate its slice in global
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build_sharded(self, shards: usize) -> Vec<XkgStore> {
        self.build_sharded_with(shards, SegmentLayout::Flat)
    }

    /// Like [`XkgBuilder::build_sharded`], with an explicit
    /// [`SegmentLayout`] applied to every shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build_sharded_with(self, shards: usize, layout: SegmentLayout) -> Vec<XkgStore> {
        assert!(shards > 0, "shard count must be positive");
        let dict = Arc::new(self.dict);
        let sources: Arc<[Box<str>]> = self.sources.into();
        let mut parts: Vec<(Vec<Triple>, Vec<Provenance>)> =
            (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (triple, prov) in self.triples.into_iter().zip(self.prov) {
            let shard = triple.s.shard_of(shards);
            parts[shard].0.push(triple);
            parts[shard].1.push(prov);
        }
        // Freeze shard indexes in parallel: each shard's permutation and
        // posting builds are independent. (The per-shard TripleIndex
        // build itself goes parallel only above its own size threshold.)
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|(triples, prov)| {
                    let dict = Arc::clone(&dict);
                    let sources = Arc::clone(&sources);
                    scope.spawn(move || XkgStore::freeze(dict, triples, prov, sources, layout))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build thread panicked"))
                .collect()
        })
    }
}

/// An immutable, fully indexed extended knowledge graph.
///
/// # Examples
///
/// ```
/// use trinit_xkg::{SlotPattern, XkgBuilder};
///
/// let mut b = XkgBuilder::new();
/// b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
/// b.add_kg_resources("Ulm", "locatedIn", "Germany");
/// let store = b.build();
///
/// let born_in = store.resource("bornIn").unwrap();
/// let matches = store.lookup(&SlotPattern::with_p(born_in));
/// assert_eq!(matches.len(), 1);
/// ```
#[derive(Debug)]
pub struct XkgStore {
    /// Shared so shards of one logical store agree on term ids; a
    /// monolithic store is simply the sole owner.
    dict: Arc<TermDict>,
    triples: Vec<Triple>,
    prov: Vec<Provenance>,
    /// Shared for the same reason: [`SourceId`]s are issued by one
    /// builder and must resolve identically in every shard.
    sources: Arc<[Box<str>]>,
    index: TripleIndex,
    postings: PostingIndex,
    kg_len: usize,
    layout: SegmentLayout,
}

impl XkgStore {
    /// Freezes already-interned parts into a fully indexed store.
    fn freeze(
        dict: Arc<TermDict>,
        triples: Vec<Triple>,
        prov: Vec<Provenance>,
        sources: Arc<[Box<str>]>,
        layout: SegmentLayout,
    ) -> XkgStore {
        let index = TripleIndex::build_with(&triples, layout);
        let postings = PostingIndex::build(&triples, &prov, layout);
        let kg_len = prov.iter().filter(|p| p.graph == GraphTag::Kg).count();
        XkgStore {
            dict,
            triples,
            prov,
            sources,
            index,
            postings,
            kg_len,
            layout,
        }
    }

    /// The physical layout this store's segment was frozen with.
    #[inline]
    pub fn layout(&self) -> SegmentLayout {
        self.layout
    }

    /// The term dictionary.
    #[inline]
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// A shared handle to the term dictionary. Shards of one logical
    /// store return handles to the *same* dictionary (pointer-equal),
    /// which is how a sharded deployment keeps term ids global.
    #[inline]
    pub fn dict_handle(&self) -> Arc<TermDict> {
        Arc::clone(&self.dict)
    }

    /// Looks up an existing resource term by name.
    pub fn resource(&self, name: &str) -> Option<TermId> {
        self.dict.get(TermKind::Resource, name)
    }

    /// Looks up an existing token term by phrase.
    pub fn token(&self, phrase: &str) -> Option<TermId> {
        self.dict.get(TermKind::Token, phrase)
    }

    /// Looks up an existing literal term by value.
    pub fn literal(&self, value: &str) -> Option<TermId> {
        self.dict.get(TermKind::Literal, value)
    }

    /// Number of distinct triples (KG + XKG strata).
    #[inline]
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the store holds no triples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of distinct triples in a stratum. O(1): the counts are
    /// frozen at [`XkgBuilder::build`] time.
    pub fn len_of(&self, graph: GraphTag) -> usize {
        match graph {
            GraphTag::Kg => self.kg_len,
            GraphTag::Xkg => self.triples.len() - self.kg_len,
        }
    }

    /// The triple with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this store.
    #[inline]
    pub fn triple(&self, id: TripleId) -> Triple {
        self.triples[id.idx()]
    }

    /// Provenance of the triple with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this store.
    #[inline]
    pub fn provenance(&self, id: TripleId) -> &Provenance {
        &self.prov[id.idx()]
    }

    /// Resolves a source id to its document identifier.
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.sources.get(id.0 as usize).map(AsRef::as_ref)
    }

    /// The interned provenance sources in [`SourceId`] order. Used to
    /// seed a delta builder that extends this store's source table
    /// ([`XkgBuilder::with_context`]).
    pub fn sources(&self) -> &[Box<str>] {
        &self.sources
    }

    /// All triple ids matching `pattern`, served from the columnar
    /// permutation indexes. Borrowed (allocation-free) on Flat segments;
    /// Packed segments decode the id column of the matching range.
    /// Derefs to `&[TripleId]`.
    #[inline]
    pub fn lookup(&self, pattern: &SlotPattern) -> MatchIds<'_> {
        self.index.lookup(pattern)
    }

    /// Like [`XkgStore::lookup`], but Packed segments decode into the
    /// caller's scratch buffer instead of allocating — the per-probe
    /// serving seam for hot loops (join probes reuse one buffer per
    /// depth).
    #[inline]
    pub fn lookup_in<'a>(
        &'a self,
        pattern: &SlotPattern,
        buf: &'a mut Vec<TripleId>,
    ) -> &'a [TripleId] {
        self.index.lookup_in(pattern, buf)
    }

    /// Exact number of triples matching `pattern`.
    #[inline]
    pub fn count(&self, pattern: &SlotPattern) -> usize {
        self.index.count(pattern)
    }

    /// The precomputed score-sorted posting index (the paper's "triple
    /// pattern index lists").
    #[inline]
    pub fn posting_index(&self) -> &PostingIndex {
        &self.postings
    }

    /// Predicates present in the store, ascending by term id.
    #[inline]
    pub fn predicates(&self) -> &[TermId] {
        self.postings.predicates()
    }

    /// One predicate's group in descending emission-weight order, with
    /// probabilities normalized over the predicate. Borrowed
    /// (allocation-free) on Flat segments, decoded into scratch on
    /// Packed ones — bit-identical values either way.
    pub fn predicate_group(&self, p: TermId) -> GroupRef<'_> {
        self.postings.predicate_serve(p, &self.prov)
    }

    /// The global unbound stratum: every triple in descending
    /// emission-weight order, normalized over the whole store.
    pub fn unbound_group(&self) -> GroupRef<'_> {
        self.postings.all_serve(&self.prov)
    }

    /// The subject-anchored stratum's group for `s`: the stratum shares
    /// the SPO permutation's primary-key order, so the group span is the
    /// permutation's binary-searched range (no group directory exists
    /// for the anchored strata).
    pub fn subject_group(&self, s: TermId) -> GroupRef<'_> {
        let span = self.index.span(&SlotPattern::new(Some(s), None, None));
        self.postings.subject_serve(span, &self.prov)
    }

    /// The object-anchored stratum's group for `o` (group span shared
    /// with the OSP permutation's range).
    pub fn object_group(&self, o: TermId) -> GroupRef<'_> {
        let span = self.index.span(&SlotPattern::new(None, None, Some(o)));
        self.postings.object_serve(span, &self.prov)
    }

    /// Total emission weight of one subject's matches, read from the
    /// anchored stratum's prefix sums (reconstructed exactly from block
    /// checkpoints on Packed segments). O(log n), allocation-free.
    pub fn subject_total_weight(&self, s: TermId) -> f64 {
        let span = self.index.span(&SlotPattern::new(Some(s), None, None));
        self.postings.subject_span_total(span, &self.prov)
    }

    /// Total emission weight of one object's matches (see
    /// [`XkgStore::subject_total_weight`]).
    pub fn object_total_weight(&self, o: TermId) -> f64 {
        let span = self.index.span(&SlotPattern::new(None, None, Some(o)));
        self.postings.object_span_total(span, &self.prov)
    }

    /// Entries-only serve of `pattern` for the four index-backed
    /// shapes — the same entries, totals, and serve kinds
    /// [`PostingList::build`](crate::PostingList::build) produces,
    /// minus the prefix column. `None` for composite shapes, which
    /// filter rather than serve whole groups.
    pub(crate) fn group_entries(
        &self,
        pattern: &SlotPattern,
    ) -> Option<(EntriesRef<'_>, f64, ServeKind)> {
        match (pattern.s, pattern.p, pattern.o) {
            (None, Some(p), None) => Some((
                self.postings.predicate_serve_entries(p, &self.prov),
                self.postings.predicate_total_weight(p),
                ServeKind::Predicate,
            )),
            (None, None, None) => Some((
                self.postings.all_serve_entries(&self.prov),
                self.postings.total_weight(),
                ServeKind::Unbound,
            )),
            (Some(s), None, None) => {
                let span = self.index.span(&SlotPattern::new(Some(s), None, None));
                Some((
                    self.postings.subject_serve_entries(span.clone(), &self.prov),
                    self.postings.subject_span_total(span, &self.prov),
                    ServeKind::Subject,
                ))
            }
            (None, None, Some(o)) => {
                let span = self.index.span(&SlotPattern::new(None, None, Some(o)));
                Some((
                    self.postings.object_serve_entries(span.clone(), &self.prov),
                    self.postings.object_span_total(span, &self.prov),
                    ServeKind::Object,
                ))
            }
            _ => None,
        }
    }

    /// Exact head probability (best emission) of `pattern`'s posting
    /// list for the shapes the precomputed index serves — predicate-only,
    /// fully unbound, subject-only, and object-only — without
    /// materializing anything. `None` for shapes the index cannot answer
    /// without filtering; callers must fall back to a trivial bound (1.0)
    /// or build the list.
    pub fn head_prob(&self, pattern: &SlotPattern) -> Option<f64> {
        match (pattern.s, pattern.p, pattern.o) {
            (None, Some(p), None) => Some(
                self.postings
                    .predicate_head(p, &self.prov)
                    .map_or(0.0, |e| e.prob),
            ),
            (None, None, None) => Some(
                self.postings
                    .global_head(&self.prov)
                    .map_or(0.0, |e| e.prob),
            ),
            (Some(s), None, None) => {
                let span = self.index.span(&SlotPattern::new(Some(s), None, None));
                Some(
                    self.postings
                        .subject_head(span, &self.prov)
                        .map_or(0.0, |e| e.prob),
                )
            }
            (None, None, Some(o)) => {
                let span = self.index.span(&SlotPattern::new(None, None, Some(o)));
                Some(
                    self.postings
                        .object_head(span, &self.prov)
                        .map_or(0.0, |e| e.prob),
                )
            }
            _ => None,
        }
    }

    /// Raw head emission *weight* of `pattern`'s match set for the four
    /// index-served shapes, `None` otherwise. Partitioned execution
    /// divides a shard's head weight by a *global* total to get the
    /// shard's exact globally-normalized head bound.
    pub fn head_weight(&self, pattern: &SlotPattern) -> Option<f64> {
        match (pattern.s, pattern.p, pattern.o) {
            (None, Some(p), None) => Some(
                self.postings
                    .predicate_head(p, &self.prov)
                    .map_or(0.0, |e| e.weight),
            ),
            (None, None, None) => Some(
                self.postings
                    .global_head(&self.prov)
                    .map_or(0.0, |e| e.weight),
            ),
            (Some(s), None, None) => {
                let span = self.index.span(&SlotPattern::new(Some(s), None, None));
                Some(
                    self.postings
                        .subject_head(span, &self.prov)
                        .map_or(0.0, |e| e.weight),
                )
            }
            (None, None, Some(o)) => {
                let span = self.index.span(&SlotPattern::new(None, None, Some(o)));
                Some(
                    self.postings
                        .object_head(span, &self.prov)
                        .map_or(0.0, |e| e.weight),
                )
            }
            _ => None,
        }
    }

    /// Exact per-structure heap byte accounting of the frozen store.
    pub fn storage_bytes(&self) -> StorageBytes {
        let (permutations, permutation_directories) = self.index.heap_bytes();
        let (posting_strata, posting_directories) = self.postings.heap_bytes();
        let provenance = self.prov.capacity() * std::mem::size_of::<Provenance>()
            + self
                .prov
                .iter()
                .map(|p| p.sources.capacity() * std::mem::size_of::<SourceId>())
                .sum::<usize>();
        StorageBytes {
            permutations,
            permutation_directories,
            posting_strata,
            posting_directories,
            dict: self.dict.heap_bytes(),
            triples: self.triples.capacity() * std::mem::size_of::<Triple>(),
            provenance,
        }
    }

    /// Iterates all stored triples with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (TripleId, Triple)> + '_ {
        self.triples
            .iter()
            .enumerate()
            .map(|(i, t)| (TripleId(i as u32), *t))
    }

    /// Renders a term for display: resources verbatim, tokens and literals
    /// single-quoted (matching the paper's figures).
    pub fn display_term(&self, id: TermId) -> String {
        match self.dict.resolve(id) {
            Some(text) if id.is_resource() => text.to_string(),
            Some(text) => format!("'{text}'"),
            None => format!("<unknown {id:?}>"),
        }
    }

    /// Renders a triple in `S P O` form.
    pub fn display_triple(&self, id: TripleId) -> String {
        let t = self.triple(id);
        format!(
            "{} {} {}",
            self.display_term(t.s),
            self.display_term(t.p),
            self.display_term(t.o)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
        b.add_kg_resources("Ulm", "locatedIn", "Germany");
        b.add_kg_literal("AlbertEinstein", "bornOn", "1879-03-14");
        let s = b.dict_mut().resource("AlbertEinstein");
        let p = b.dict_mut().token("won Nobel for");
        let o = b.dict_mut().token("discovery of the photoelectric effect");
        let src = b.intern_source("clueweb:doc-17");
        b.add_extracted(s, p, o, 0.8, src);
        b.build()
    }

    #[test]
    fn dedup_merges_provenance() {
        let mut b = XkgBuilder::new();
        let id1 = b.add_kg_resources("A", "p", "B");
        let id2 = b.add_kg_resources("A", "p", "B");
        assert_eq!(id1, id2);
        assert_eq!(b.len(), 1);
        let store = b.build();
        assert_eq!(store.provenance(id1).support, 2);
    }

    #[test]
    fn strata_are_counted_separately() {
        let store = sample();
        assert_eq!(store.len(), 4);
        assert_eq!(store.len_of(GraphTag::Kg), 3);
        assert_eq!(store.len_of(GraphTag::Xkg), 1);
    }

    #[test]
    fn extraction_remembers_source() {
        let store = sample();
        let p = store.token("won Nobel for").unwrap();
        let ids = store.lookup(&SlotPattern::with_p(p));
        assert_eq!(ids.len(), 1);
        let prov = store.provenance(ids[0]);
        assert_eq!(prov.graph, GraphTag::Xkg);
        assert_eq!(prov.sources.len(), 1);
        assert_eq!(store.source_name(prov.sources[0]), Some("clueweb:doc-17"));
    }

    #[test]
    fn nan_confidence_returns_typed_error_instead_of_panicking() {
        let mut b = XkgBuilder::new();
        let s = b.dict_mut().resource("s");
        let p = b.dict_mut().resource("p");
        let o = b.dict_mut().resource("o");
        let src = b.intern_source("doc");
        let err = b.try_add_extracted(s, p, o, f32::NAN, src).unwrap_err();
        assert!(matches!(err, XkgError::NonFiniteConfidence { .. }));
        assert!(err.to_string().contains("non-finite"));
        let err = b.try_add_extracted(s, p, o, f32::INFINITY, src).unwrap_err();
        assert!(matches!(
            err,
            XkgError::NonFiniteConfidence { confidence, .. } if confidence == f32::INFINITY
        ));
        // A raw provenance with a poisoned confidence is rejected too.
        let mut prov = Provenance::extraction(0.5, src);
        prov.confidence = f32::NAN;
        assert!(b.try_add(Triple::new(s, p, o), prov).is_err());
        assert!(b.is_empty(), "rejected facts must not be stored");
        // The infallible path sanitizes instead — and the build (which
        // used to panic on a NaN weight deep in the posting sort) is fine.
        let mut prov = Provenance::extraction(0.5, src);
        prov.confidence = f32::NAN;
        let id = b.add(Triple::new(s, p, o), prov);
        let store = b.build();
        assert_eq!(store.provenance(id).weight(), 0.0);
    }

    #[test]
    fn negative_confidence_clamps_to_zero() {
        let mut b = XkgBuilder::new();
        let s = b.dict_mut().resource("s");
        let p = b.dict_mut().resource("p");
        let o = b.dict_mut().resource("o");
        let src = b.intern_source("doc");
        let mut prov = Provenance::extraction(0.5, src);
        prov.confidence = -0.25; // bypass extraction()'s clamp
        let id = b.try_add(Triple::new(s, p, o), prov).unwrap();
        let store = b.build();
        assert_eq!(store.provenance(id).confidence, 0.0);
        assert_eq!(store.provenance(id).weight(), 0.0);
    }

    #[test]
    fn anchored_groups_share_permutation_spans() {
        let store = sample();
        let einstein = store.resource("AlbertEinstein").unwrap();
        let group = store.subject_group(einstein);
        assert_eq!(
            group.len(),
            store.lookup(&SlotPattern::new(Some(einstein), None, None)).len()
        );
        assert!(group
            .entries()
            .iter()
            .all(|e| store.triple(e.triple).s == einstein));
        assert!(group
            .entries()
            .windows(2)
            .all(|w| w[0].weight >= w[1].weight));
        let total: f64 = group.entries().iter().map(|e| e.weight).sum();
        assert!((store.subject_total_weight(einstein) - total).abs() < 1e-9);

        let princeton = store.resource("PrincetonUniversity");
        if let Some(princeton) = princeton {
            let ogroup = store.object_group(princeton);
            assert!(ogroup
                .entries()
                .iter()
                .all(|e| store.triple(e.triple).o == princeton));
        }
        // Absent anchors serve empty groups and zero totals.
        let ghost = TermId::new(TermKind::Resource, 9999);
        assert!(store.subject_group(ghost).is_empty());
        assert_eq!(store.object_total_weight(ghost), 0.0);
    }

    #[test]
    fn head_prob_covers_anchored_shapes() {
        let store = sample();
        let einstein = store.resource("AlbertEinstein").unwrap();
        let ulm = store.resource("Ulm").unwrap();
        for pattern in [
            SlotPattern::new(Some(einstein), None, None),
            SlotPattern::new(None, None, Some(ulm)),
        ] {
            let head = store.head_prob(&pattern).expect("anchored head is O(1)");
            let list = crate::posting::PostingList::build(&store, &pattern);
            let actual = list.peek_prob().unwrap_or(0.0);
            assert!((head - actual).abs() < 1e-12, "{pattern}");
            let hw = store.head_weight(&pattern).expect("anchored head weight");
            assert!((hw - list.entries().first().map_or(0.0, |e| e.weight)).abs() < 1e-12);
        }
        // Composite shapes still decline.
        let sp = SlotPattern::with_sp(einstein, store.resource("bornIn").unwrap());
        assert_eq!(store.head_prob(&sp), None);
        assert_eq!(store.head_weight(&sp), None);
    }

    #[test]
    fn source_interning_is_idempotent() {
        let mut b = XkgBuilder::new();
        let a = b.intern_source("doc");
        let c = b.intern_source("doc");
        assert_eq!(a, c);
    }

    #[test]
    fn display_quotes_tokens_and_literals() {
        let store = sample();
        let p = store.token("won Nobel for").unwrap();
        let ids = store.lookup(&SlotPattern::with_p(p));
        let rendered = store.display_triple(ids[0]);
        assert_eq!(
            rendered,
            "AlbertEinstein 'won Nobel for' 'discovery of the photoelectric effect'"
        );
        let born_on = store.resource("bornOn").unwrap();
        let ids = store.lookup(&SlotPattern::with_p(born_on));
        assert!(store.display_triple(ids[0]).ends_with("'1879-03-14'"));
    }

    #[test]
    fn lookup_by_subject_and_object() {
        let store = sample();
        let einstein = store.resource("AlbertEinstein").unwrap();
        let subject_matches = store.lookup(&SlotPattern::new(Some(einstein), None, None));
        assert_eq!(subject_matches.len(), 3);
        let germany = store.resource("Germany").unwrap();
        let object_matches = store.lookup(&SlotPattern::new(None, None, Some(germany)));
        assert_eq!(object_matches.len(), 1);
    }

    #[test]
    fn empty_store() {
        let store = XkgBuilder::new().build();
        assert!(store.is_empty());
        assert_eq!(store.lookup(&SlotPattern::any()).len(), 0);
    }

    fn many_subject_builder(n: u32) -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..n {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{i}"));
            if i % 3 == 0 {
                let s = b.dict_mut().resource(&format!("s{i}"));
                let p = b.dict_mut().token("linked to");
                let o = b.dict_mut().resource(&format!("x{i}"));
                let src = b.intern_source(&format!("doc{i}"));
                b.add_extracted(s, p, o, 0.5 + (i % 5) as f32 * 0.1, src);
            }
        }
        b
    }

    #[test]
    fn sharded_build_partitions_without_loss() {
        let builder = many_subject_builder(40);
        let single = builder.clone().build();
        for shards in [1usize, 2, 3, 7] {
            let parts = builder.clone().build_sharded(shards);
            assert_eq!(parts.len(), shards);
            let total: usize = parts.iter().map(XkgStore::len).sum();
            assert_eq!(total, single.len(), "{shards} shards lose triples");
            let kg: usize = parts.iter().map(|s| s.len_of(GraphTag::Kg)).sum();
            assert_eq!(kg, single.len_of(GraphTag::Kg));
            // Every triple of every shard exists in the monolith.
            for part in &parts {
                for (_, t) in part.iter() {
                    assert_eq!(
                        single.count(&SlotPattern::new(Some(t.s), Some(t.p), Some(t.o))),
                        1
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_build_colocates_subjects_and_shares_dict() {
        let parts = many_subject_builder(40).build_sharded(4);
        for (k, part) in parts.iter().enumerate() {
            // Co-location: each triple is in the shard its subject hashes to.
            for (_, t) in part.iter() {
                assert_eq!(t.s.shard_of(4), k, "triple in wrong shard");
            }
            // One shared dictionary and source table across shards.
            assert!(Arc::ptr_eq(&parts[0].dict_handle(), &part.dict_handle()));
            assert_eq!(
                part.source_name(SourceId(0)),
                parts[0].source_name(SourceId(0))
            );
        }
        // Shared dict means terms resolve in shards that hold no triple
        // for them.
        let s0 = parts[0].resource("s1").unwrap();
        assert_eq!(parts[1].resource("s1"), Some(s0));
    }

    #[test]
    fn sharded_build_preserves_global_insertion_order_within_shard() {
        let builder = many_subject_builder(30);
        let single = builder.clone().build();
        let parts = builder.build_sharded(3);
        for part in &parts {
            // Local id order must enumerate the shard's triples in the
            // monolith's insertion order (the partition is stable).
            let mut last_global: Option<u32> = None;
            for (_, t) in part.iter() {
                let slot = SlotPattern::new(Some(t.s), Some(t.p), Some(t.o));
                let global = single.lookup(&slot)[0].0;
                if let Some(prev) = last_global {
                    assert!(global > prev, "partition reordered triples");
                }
                last_global = Some(global);
            }
        }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for i in 0..500u32 {
            let id = TermId::new(TermKind::Resource, i);
            for n in [1usize, 2, 5, 16] {
                let s = id.shard_of(n);
                assert!(s < n);
                assert_eq!(s, id.shard_of(n), "hash must be deterministic");
            }
            assert_eq!(id.shard_of(1), 0);
        }
    }
}
