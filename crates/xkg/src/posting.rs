//! Score-sorted posting lists for triple patterns.
//!
//! The paper's top-k processor (§4) requires *sorted access* to the matches
//! of each triple pattern: "top-k query processing is based on the ability
//! to access answers for a triple pattern in sorted order of their scores".
//!
//! A [`PostingList`] materializes the matches of a [`SlotPattern`] ordered
//! by descending emission weight (`support × confidence`, the tf-like
//! component) and exposes the pattern's total weight, whose reciprocal is
//! the idf-like selectivity component: the emission probability of a match
//! is `weight / total_weight`.

use crate::pattern::SlotPattern;
use crate::store::XkgStore;
use crate::triple::TripleId;

/// A single scored entry of a posting list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The matching triple.
    pub triple: TripleId,
    /// Raw emission weight (`support × confidence`).
    pub weight: f64,
    /// Normalized emission probability `weight / total_weight` of the
    /// pattern. In `(0, 1]`; all probabilities of a list sum to 1 (unless
    /// the list is empty).
    pub prob: f64,
}

/// The matches of a triple pattern in descending score order, with a cursor
/// for incremental sorted access.
#[derive(Debug, Clone)]
pub struct PostingList {
    entries: Vec<Posting>,
    total_weight: f64,
    cursor: usize,
}

impl PostingList {
    /// Builds the posting list for `pattern` over `store`.
    ///
    /// Ties in weight are broken by triple id so iteration order is
    /// deterministic.
    pub fn build(store: &XkgStore, pattern: &SlotPattern) -> PostingList {
        let ids = store.lookup(pattern);
        let mut raw: Vec<(TripleId, f64)> = ids
            .iter()
            .map(|&id| (id, store.provenance(id).weight()))
            .collect();
        let total_weight: f64 = raw.iter().map(|(_, w)| w).sum();
        raw.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        let entries = raw
            .into_iter()
            .map(|(triple, weight)| Posting {
                triple,
                weight,
                prob: if total_weight > 0.0 {
                    weight / total_weight
                } else {
                    0.0
                },
            })
            .collect();
        PostingList {
            entries,
            total_weight,
            cursor: 0,
        }
    }

    /// Total emission weight of all matches (the idf-like normalizer).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of matches.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the pattern has no matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in descending score order (ignores the cursor).
    #[inline]
    pub fn entries(&self) -> &[Posting] {
        &self.entries
    }

    /// The next unconsumed posting, without advancing.
    #[inline]
    pub fn peek(&self) -> Option<Posting> {
        self.entries.get(self.cursor).copied()
    }

    /// The emission probability of the next unconsumed posting (an upper
    /// bound on everything still in the list), or `None` if exhausted.
    #[inline]
    pub fn peek_prob(&self) -> Option<f64> {
        self.peek().map(|p| p.prob)
    }

    /// Consumes and returns the next posting in descending score order.
    #[inline]
    pub fn next_posting(&mut self) -> Option<Posting> {
        let p = self.peek()?;
        self.cursor += 1;
        Some(p)
    }

    /// Number of postings consumed so far (depth of sorted access).
    #[inline]
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Resets the cursor to the start of the list.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::XkgBuilder;

    fn store_with_weights() -> XkgStore {
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("lecturedAt");
        let princeton = b.dict_mut().resource("Princeton");
        for (i, conf) in [(0u32, 0.9f32), (1, 0.5), (2, 0.7)] {
            let s = b.dict_mut().resource(&format!("person{i}"));
            let src = b.intern_source(&format!("doc{i}"));
            b.add_extracted(s, p, princeton, conf, src);
        }
        b.build()
    }

    #[test]
    fn postings_sorted_descending() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        assert_eq!(list.len(), 3);
        let weights: Vec<f64> = list.entries().iter().map(|e| e.weight).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
        assert!((list.total_weight() - 2.1).abs() < 1e-6);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        let sum: f64 = list.entries().iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cursor_walks_in_order() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        let first = list.next_posting().unwrap();
        let second = list.next_posting().unwrap();
        assert!(first.prob >= second.prob);
        assert_eq!(list.consumed(), 2);
        list.rewind();
        assert_eq!(list.consumed(), 0);
        assert_eq!(list.peek().unwrap(), first);
    }

    #[test]
    fn empty_pattern_list() {
        let store = store_with_weights();
        let ghost = crate::term::TermId::new(crate::TermKind::Resource, 999);
        let mut list = PostingList::build(&store, &SlotPattern::with_p(ghost));
        assert!(list.is_empty());
        assert_eq!(list.peek_prob(), None);
        assert_eq!(list.next_posting(), None);
        assert_eq!(list.total_weight(), 0.0);
    }
}
