//! Score-sorted posting lists for triple patterns.
//!
//! The paper's top-k processor (§4) requires *sorted access* to the matches
//! of each triple pattern: "top-k query processing is based on the ability
//! to access answers for a triple pattern in sorted order of their scores".
//!
//! # Precomputed posting index
//!
//! The store freezes a [`PostingIndex`] at build time — the paper's
//! "triple pattern index lists" made literal:
//!
//! * **Per predicate**: every triple, grouped by predicate, each group
//!   ordered by descending emission weight (`support × confidence`) with
//!   ties broken by triple id, probabilities pre-normalized over the
//!   group, and prefix-summed weights for O(1) weight-of-prefix queries.
//! * **Unbound-predicate stratum**: one global list of all triples in the
//!   same order, normalized over the whole store, serving patterns that
//!   bind no slot at all.
//!
//! [`PostingList::build`] therefore answers the two pattern shapes the
//! query engines hammer — predicate-only and fully unbound — as **borrowed
//! slices**: `O(1)` hash probe, zero allocations, zero sorting. Other
//! shapes (subject/object bound) fall back to materializing and sorting
//! the pattern's (small) permutation-index range, exactly as before.

use std::collections::HashMap;

use crate::pattern::SlotPattern;
use crate::store::XkgStore;
use crate::term::TermId;
use crate::triple::{Provenance, TripleId};

/// A single scored entry of a posting list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The matching triple.
    pub triple: TripleId,
    /// Raw emission weight (`support × confidence`).
    pub weight: f64,
    /// Normalized emission probability `weight / total_weight` of the
    /// pattern. In `(0, 1]`; all probabilities of a list sum to 1 (unless
    /// the list is empty).
    pub prob: f64,
}

/// One predicate's contiguous range in the posting index.
#[derive(Debug, Clone, Copy)]
struct Group {
    start: u32,
    end: u32,
    total_weight: f64,
}

/// Build-time score-sorted posting index over a frozen triple table.
///
/// Adds 24 bytes per triple for the per-predicate list, 24 for the global
/// list, and 16 for the two prefix-sum columns (64 bytes per triple
/// total) in exchange for allocation-free `O(1)` sorted access on the
/// top-k hot path.
#[derive(Debug, Default)]
pub struct PostingIndex {
    /// All triples sorted by (predicate, weight desc, id asc).
    by_pred: Vec<Posting>,
    /// Prefix sums over `by_pred` weights (`len + 1` entries).
    by_pred_prefix: Vec<f64>,
    /// Predicate → its contiguous group.
    groups: HashMap<TermId, Group>,
    /// Predicates in ascending term-id order (deterministic iteration).
    predicates: Vec<TermId>,
    /// All triples sorted by (weight desc, id asc), normalized globally.
    all: Vec<Posting>,
    /// Prefix sums over `all` weights (`len + 1` entries).
    all_prefix: Vec<f64>,
    /// Total emission weight of the whole store.
    all_total: f64,
}

impl PostingIndex {
    /// Builds the index. `prov[i]` belongs to the triple with id `i`;
    /// `predicate_of(i)` resolves a triple id to its predicate term.
    pub(crate) fn build(prov: &[Provenance], predicate_of: impl Fn(usize) -> TermId) -> PostingIndex {
        let n = prov.len();
        let weights: Vec<f64> = prov.iter().map(Provenance::weight).collect();

        // (predicate, weight desc, id asc) order for the per-predicate lists.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (pa, pb) = (predicate_of(a as usize), predicate_of(b as usize));
            pa.cmp(&pb)
                .then_with(|| {
                    weights[b as usize]
                        .partial_cmp(&weights[a as usize])
                        .expect("weights are finite")
                })
                .then_with(|| a.cmp(&b))
        });

        // Group boundaries + per-group totals, then normalized entries.
        let mut by_pred: Vec<Posting> = Vec::with_capacity(n);
        let mut by_pred_prefix: Vec<f64> = Vec::with_capacity(n + 1);
        by_pred_prefix.push(0.0);
        let mut groups: HashMap<TermId, Group> = HashMap::new();
        let mut predicates: Vec<TermId> = Vec::new();
        let mut i = 0usize;
        while i < n {
            let pred = predicate_of(order[i] as usize);
            let mut j = i;
            let mut total = 0.0f64;
            while j < n && predicate_of(order[j] as usize) == pred {
                total += weights[order[j] as usize];
                j += 1;
            }
            for &id in &order[i..j] {
                let weight = weights[id as usize];
                by_pred.push(Posting {
                    triple: TripleId(id),
                    weight,
                    prob: if total > 0.0 { weight / total } else { 0.0 },
                });
                by_pred_prefix.push(by_pred_prefix.last().unwrap() + weight);
            }
            groups.insert(
                pred,
                Group {
                    start: i as u32,
                    end: j as u32,
                    total_weight: total,
                },
            );
            predicates.push(pred);
            i = j;
        }
        predicates.sort_unstable();

        // Global (weight desc, id asc) order for the unbound stratum.
        let mut all_order: Vec<u32> = (0..n as u32).collect();
        all_order.sort_unstable_by(|&a, &b| {
            weights[b as usize]
                .partial_cmp(&weights[a as usize])
                .expect("weights are finite")
                .then_with(|| a.cmp(&b))
        });
        let all_total: f64 = weights.iter().sum();
        let mut all: Vec<Posting> = Vec::with_capacity(n);
        let mut all_prefix: Vec<f64> = Vec::with_capacity(n + 1);
        all_prefix.push(0.0);
        for &id in &all_order {
            let weight = weights[id as usize];
            all.push(Posting {
                triple: TripleId(id),
                weight,
                prob: if all_total > 0.0 { weight / all_total } else { 0.0 },
            });
            all_prefix.push(all_prefix.last().unwrap() + weight);
        }

        PostingIndex {
            by_pred,
            by_pred_prefix,
            groups,
            predicates,
            all,
            all_prefix,
            all_total,
        }
    }

    /// The predicates present in the store, ascending by term id.
    pub fn predicates(&self) -> &[TermId] {
        &self.predicates
    }

    /// One predicate's score-sorted postings (empty if absent).
    pub fn predicate_postings(&self, p: TermId) -> &[Posting] {
        match self.groups.get(&p) {
            Some(g) => &self.by_pred[g.start as usize..g.end as usize],
            None => &[],
        }
    }

    /// Emission probability of the best-scored match under predicate `p`
    /// (the head of its score-sorted group), or 0.0 for an absent or
    /// zero-weight predicate. O(1): one hash probe into the precomputed
    /// index, no materialization.
    pub fn predicate_head_prob(&self, p: TermId) -> f64 {
        self.predicate_postings(p).first().map_or(0.0, |e| e.prob)
    }

    /// Emission probability of the globally best-scored triple (head of
    /// the unbound-predicate stratum), or 0.0 for an empty store. O(1).
    pub fn global_head_prob(&self) -> f64 {
        self.all.first().map_or(0.0, |e| e.prob)
    }

    /// Total emission weight under one predicate.
    pub fn predicate_total_weight(&self, p: TermId) -> f64 {
        self.groups.get(&p).map_or(0.0, |g| g.total_weight)
    }

    /// All postings, score-sorted, normalized over the whole store.
    pub fn all_postings(&self) -> &[Posting] {
        &self.all
    }

    /// Total emission weight of the store.
    pub fn total_weight(&self) -> f64 {
        self.all_total
    }

    /// Prefix-sum slice aligned with `predicate_postings(p)` (one entry
    /// longer than the group).
    fn predicate_prefix(&self, p: TermId) -> Option<&[f64]> {
        self.groups
            .get(&p)
            .map(|g| &self.by_pred_prefix[g.start as usize..=g.end as usize])
    }
}

/// Where a posting list's entries live.
#[derive(Debug, Clone)]
enum Entries<'s> {
    /// Borrowed straight from the store's [`PostingIndex`] (hot path:
    /// zero allocations, zero sorting).
    Borrowed(&'s [Posting]),
    /// Materialized for pattern shapes outside the precomputed index.
    Owned(Vec<Posting>),
    /// Shared with a caller-managed cache (see the query layer's
    /// posting-cache hierarchy); each list keeps its own cursor.
    /// `Arc` so cross-query caches can live behind `Sync` facades.
    Shared(std::sync::Arc<[Posting]>),
}

impl Entries<'_> {
    #[inline]
    fn as_slice(&self) -> &[Posting] {
        match self {
            Entries::Borrowed(s) => s,
            Entries::Owned(v) => v,
            Entries::Shared(rc) => rc,
        }
    }
}

/// The matches of a triple pattern in descending score order, with a cursor
/// for incremental sorted access.
///
/// Borrows from the store's precomputed [`PostingIndex`] when the pattern
/// shape allows (predicate-only and fully unbound patterns); other shapes
/// own a materialized list.
#[derive(Debug, Clone)]
pub struct PostingList<'s> {
    entries: Entries<'s>,
    /// Prefix-summed weights aligned with `entries` (one entry longer),
    /// when served from the precomputed index.
    prefix: Option<&'s [f64]>,
    total_weight: f64,
    /// Weight consumed by the cursor so far, maintained incrementally so
    /// [`PostingList::remaining_weight`] is O(1) even for materialized
    /// lists without a prefix column.
    consumed_weight: f64,
    cursor: usize,
}

impl<'s> PostingList<'s> {
    /// Builds the posting list for `pattern` over `store`.
    ///
    /// Ties in weight are broken by triple id so iteration order is
    /// deterministic. Predicate-only and fully unbound patterns are served
    /// as borrowed slices of the store's posting index without allocating.
    pub fn build(store: &'s XkgStore, pattern: &SlotPattern) -> PostingList<'s> {
        let index = store.posting_index();
        match (pattern.s, pattern.p, pattern.o) {
            (None, Some(p), None) => PostingList {
                entries: Entries::Borrowed(index.predicate_postings(p)),
                prefix: index.predicate_prefix(p),
                total_weight: index.predicate_total_weight(p),
                consumed_weight: 0.0,
                cursor: 0,
            },
            (None, None, None) => PostingList {
                entries: Entries::Borrowed(index.all_postings()),
                prefix: Some(&index.all_prefix),
                total_weight: index.total_weight(),
                consumed_weight: 0.0,
                cursor: 0,
            },
            _ => {
                let ids = store.lookup(pattern);
                let mut raw: Vec<(TripleId, f64)> = ids
                    .iter()
                    .map(|&id| (id, store.provenance(id).weight()))
                    .collect();
                let total_weight: f64 = raw.iter().map(|(_, w)| w).sum();
                raw.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("weights are finite")
                        .then_with(|| a.0.cmp(&b.0))
                });
                let entries = raw
                    .into_iter()
                    .map(|(triple, weight)| Posting {
                        triple,
                        weight,
                        prob: if total_weight > 0.0 {
                            weight / total_weight
                        } else {
                            0.0
                        },
                    })
                    .collect();
                PostingList {
                    entries: Entries::Owned(entries),
                    prefix: None,
                    total_weight,
                    consumed_weight: 0.0,
                    cursor: 0,
                }
            }
        }
    }

    /// Wraps an externally materialized, already score-sorted entry list.
    /// Used by the query layer's filtered views over this machinery.
    pub fn from_owned(entries: Vec<Posting>, total_weight: f64) -> PostingList<'static> {
        PostingList {
            entries: Entries::Owned(entries),
            prefix: None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
        }
    }

    /// Wraps a cache-shared, already score-sorted entry list. The list
    /// gets its own cursor; the entries are not copied.
    pub fn from_shared(entries: std::sync::Arc<[Posting]>, total_weight: f64) -> PostingList<'static> {
        PostingList {
            entries: Entries::Shared(entries),
            prefix: None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
        }
    }

    /// Consumes the list into an owned entry vector (no copy when the
    /// entries were already materialized).
    pub fn into_entries(self) -> Vec<Posting> {
        match self.entries {
            Entries::Owned(v) => v,
            Entries::Borrowed(s) => s.to_vec(),
            Entries::Shared(rc) => rc.to_vec(),
        }
    }

    /// Total emission weight of all matches (the idf-like normalizer).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of matches.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.as_slice().len()
    }

    /// True if the pattern has no matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.as_slice().is_empty()
    }

    /// Entries in descending score order (ignores the cursor).
    #[inline]
    pub fn entries(&self) -> &[Posting] {
        self.entries.as_slice()
    }

    /// The next unconsumed posting, without advancing.
    #[inline]
    pub fn peek(&self) -> Option<Posting> {
        self.entries.as_slice().get(self.cursor).copied()
    }

    /// The emission probability of the next unconsumed posting (an upper
    /// bound on everything still in the list), or `None` if exhausted.
    #[inline]
    pub fn peek_prob(&self) -> Option<f64> {
        self.peek().map(|p| p.prob)
    }

    /// Consumes and returns the next posting in descending score order.
    #[inline]
    pub fn next_posting(&mut self) -> Option<Posting> {
        let p = self.peek()?;
        self.cursor += 1;
        self.consumed_weight += p.weight;
        Some(p)
    }

    /// Number of postings consumed so far (depth of sorted access).
    #[inline]
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Combined weight of the first `upto` entries. O(1) when served from
    /// the precomputed index (prefix sums), O(upto) otherwise.
    pub fn prefix_weight(&self, upto: usize) -> f64 {
        let upto = upto.min(self.len());
        match self.prefix {
            Some(pre) => pre[upto] - pre[0],
            None => self.entries.as_slice()[..upto]
                .iter()
                .map(|e| e.weight)
                .sum(),
        }
    }

    /// Emission weight not yet consumed by the cursor. O(1) for every
    /// list: index-served lists read the build-time prefix-sum columns,
    /// materialized lists use the consumed weight tracked by
    /// [`PostingList::next_posting`]. (The rank-join threshold asks for
    /// this every capping round.)
    #[inline]
    pub fn remaining_weight(&self) -> f64 {
        match self.prefix {
            Some(pre) => (self.total_weight - (pre[self.cursor] - pre[0])).max(0.0),
            None => (self.total_weight - self.consumed_weight).max(0.0),
        }
    }

    /// Resets the cursor to the start of the list.
    pub fn rewind(&mut self) {
        self.cursor = 0;
        self.consumed_weight = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{XkgBuilder, XkgStore};

    fn store_with_weights() -> XkgStore {
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("lecturedAt");
        let princeton = b.dict_mut().resource("Princeton");
        for (i, conf) in [(0u32, 0.9f32), (1, 0.5), (2, 0.7)] {
            let s = b.dict_mut().resource(&format!("person{i}"));
            let src = b.intern_source(&format!("doc{i}"));
            b.add_extracted(s, p, princeton, conf, src);
        }
        b.build()
    }

    #[test]
    fn postings_sorted_descending() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        assert_eq!(list.len(), 3);
        let weights: Vec<f64> = list.entries().iter().map(|e| e.weight).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
        assert!((list.total_weight() - 2.1).abs() < 1e-6);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        let sum: f64 = list.entries().iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cursor_walks_in_order() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        let first = list.next_posting().unwrap();
        let second = list.next_posting().unwrap();
        assert!(first.prob >= second.prob);
        assert_eq!(list.consumed(), 2);
        list.rewind();
        assert_eq!(list.consumed(), 0);
        assert_eq!(list.peek().unwrap(), first);
    }

    #[test]
    fn empty_pattern_list() {
        let store = store_with_weights();
        let ghost = crate::term::TermId::new(crate::TermKind::Resource, 999);
        let mut list = PostingList::build(&store, &SlotPattern::with_p(ghost));
        assert!(list.is_empty());
        assert_eq!(list.peek_prob(), None);
        assert_eq!(list.next_posting(), None);
        assert_eq!(list.total_weight(), 0.0);
    }

    #[test]
    fn unbound_pattern_serves_global_list() {
        let store = store_with_weights();
        let list = PostingList::build(&store, &SlotPattern::any());
        assert_eq!(list.len(), store.len());
        let probs: Vec<f64> = list.entries().iter().map(|e| e.prob).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bound_subject_falls_back_to_materialized_list() {
        let store = store_with_weights();
        let s = store.resource("person0").unwrap();
        let list = PostingList::build(&store, &SlotPattern::new(Some(s), None, None));
        assert_eq!(list.len(), 1);
        assert!((list.entries()[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_weights_match_direct_sums() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        for upto in 0..=list.len() {
            let direct: f64 = list.entries()[..upto].iter().map(|e| e.weight).sum();
            assert!((list.prefix_weight(upto) - direct).abs() < 1e-9, "upto {upto}");
        }
        list.next_posting();
        let rest: f64 = list.entries()[1..].iter().map(|e| e.weight).sum();
        assert!((list.remaining_weight() - rest).abs() < 1e-9);
    }

    #[test]
    fn posting_index_groups_cover_every_predicate() {
        let store = store_with_weights();
        let idx = store.posting_index();
        let mut covered = 0;
        for &p in idx.predicates() {
            let group = idx.predicate_postings(p);
            assert!(!group.is_empty());
            assert!(group.windows(2).all(|w| {
                w[0].weight > w[1].weight
                    || (w[0].weight == w[1].weight && w[0].triple < w[1].triple)
            }));
            covered += group.len();
        }
        assert_eq!(covered, store.len());
    }
}
