//! Score-sorted posting lists for triple patterns.
//!
//! The paper's top-k processor (§4) requires *sorted access* to the matches
//! of each triple pattern: "top-k query processing is based on the ability
//! to access answers for a triple pattern in sorted order of their scores".
//!
//! # Precomputed posting index
//!
//! The store freezes a [`PostingIndex`] at build time — the paper's
//! "triple pattern index lists" made literal:
//!
//! * **Per predicate**: every triple, grouped by predicate, each group
//!   ordered by descending emission weight (`support × confidence`) with
//!   ties broken by triple id, probabilities pre-normalized over the
//!   group, and prefix-summed weights for O(1) weight-of-prefix queries.
//! * **Per subject / per object (anchored strata)**: the same layout
//!   grouped by subject and by object, serving the anchored pattern
//!   shapes relationship queries hammer. The groups appear in ascending
//!   anchor-term order — exactly the primary-key order of the SPO
//!   (subject) and OSP (object) permutation columns in
//!   [`crate::index::TripleIndex`] — so a group's span is recovered from
//!   the permutation's binary-searched range (the storage sharing that
//!   keeps the anchored strata from duplicating the predicate stratum's
//!   group directory).
//! * **Unbound-predicate stratum**: one global list of all triples in the
//!   same order, normalized over the whole store, serving patterns that
//!   bind no slot at all.
//!
//! # Stratum layouts
//!
//! Each stratum stores its entries in the segment's
//! [`SegmentLayout`](crate::pack::SegmentLayout):
//!
//! * **Flat** — `Vec<Posting>` (24 B/entry) plus a globally cumulative
//!   `f64` prefix-sum column (8 B/entry): borrowed slices at serve time,
//!   zero allocation.
//! * **Packed** — the triple ids bit-packed at fixed width
//!   (`ceil_log2(n)` bits), the weights as **u16 log-domain quantization
//!   codes**, and an exact-`f64` scaffolding that keeps every served
//!   score bit-identical to Flat: prefix-sum *checkpoints* at every
//!   128-entry block boundary, plus each group's exact build-time total.
//!   At serve time a group decodes into a scratch list: weights are
//!   recomputed exactly from the retained [`Provenance`] (the same
//!   `support × confidence` product the build evaluated), probabilities
//!   divide by the stored exact group total (same operands → same
//!   floats), and the prefix column re-accumulates forward from the
//!   nearest checkpoint (same additions in the same order → the same
//!   IEEE results). The u16 codes are the stratum's stored weight
//!   column — 4× smaller than the two `f64`s they replace and monotone
//!   in weight, so they preserve ranking on their own; the exact
//!   scaffolding restores the scores on emit.
//!
//! [`PostingList::build`] therefore answers **every** pattern shape
//! without sorting: predicate-only, fully unbound, subject-only, and
//! object-only patterns are **borrowed slices** on Flat segments and a
//! single group decode on Packed ones; the remaining shapes filter the
//! smallest covering group — already score-sorted, so the single
//! allocated pass preserves order. The pre-index materialize-and-sort
//! path survives only as [`PostingList::build_by_scan`], the reference
//! implementation property tests and benchmarks compare against.
//!
//! # Float edges
//!
//! Weights are validated at ingestion ([`crate::store::XkgBuilder`]
//! rejects or sanitizes non-finite confidences), and every comparison in
//! here uses `f64::total_cmp` — a NaN that slipped through cannot panic
//! the build. Groups whose total emission weight is zero serve **empty**
//! lists: a zero-mass match set emits nothing in any engine, so the
//! rank-join head bound of 0 the precomputed index reports for such
//! groups is exact rather than a trap for the tightened threshold.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use crate::index::BLOCK;
use crate::pack::{PackedInts, SegmentLayout};
use crate::pattern::SlotPattern;
use crate::store::XkgStore;
use crate::term::TermId;
use crate::triple::{Provenance, Triple, TripleId};

/// A single scored entry of a posting list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The matching triple.
    pub triple: TripleId,
    /// Raw emission weight (`support × confidence`).
    pub weight: f64,
    /// Normalized emission probability `weight / total_weight` of the
    /// pattern. In `(0, 1]`; all probabilities of a list sum to 1 (unless
    /// the list is empty).
    pub prob: f64,
}

/// One predicate's contiguous range in the posting index.
#[derive(Debug, Clone, Copy)]
struct Group {
    start: u32,
    end: u32,
    total_weight: f64,
}

/// How [`PostingList::build`] served a pattern — the observability hook
/// behind the query layer's `ExecMetrics` anchored-serve counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// Borrowed from the per-predicate stratum (zero allocation).
    Predicate,
    /// Borrowed from the global unbound stratum (zero allocation).
    Unbound,
    /// Borrowed from the subject-anchored stratum (zero allocation).
    Subject,
    /// Borrowed from the object-anchored stratum (zero allocation).
    Object,
    /// The smallest covering index group filtered by the remaining bound
    /// slots: one allocation, zero sorts (the group is already ordered).
    Filtered,
    /// A highly selective composite shape: the permutation index's exact
    /// match range, materialized and weight-ordered. Chosen when that
    /// range is far smaller than every covering group (e.g. a ground
    /// pattern over three hub terms), where ordering O(matches) entries
    /// beats walking a group that may be arbitrarily larger.
    Range,
    /// Materialized from the permutation range and sorted — the pre-index
    /// reference path ([`PostingList::build_by_scan`]); never produced by
    /// [`PostingList::build`].
    Scanned,
    /// Wrapped externally materialized entries (cache shares and the
    /// query layer's filtered views).
    External,
}

impl ServeKind {
    /// True for lists served from the anchored (subject/object) strata,
    /// including the filtered composite shapes.
    pub fn is_anchored(self) -> bool {
        matches!(
            self,
            ServeKind::Subject | ServeKind::Object | ServeKind::Filtered
        )
    }

    /// True for zero-allocation borrowed slices of the precomputed index.
    pub fn is_borrowed(self) -> bool {
        matches!(
            self,
            ServeKind::Predicate | ServeKind::Unbound | ServeKind::Subject | ServeKind::Object
        )
    }
}

/// Quantizes a weight into its u16 log-domain code: 0 for non-positive
/// weights, else `1 + round((ln(w) + 110) / 135 · 65534)` clamped into
/// `[1, 65535]`. Monotone (non-strict) in `w` over the entire finite
/// range the builder admits, so code order never contradicts weight
/// order; resolution is ~0.002 in `ln(w)` (≈0.2% relative weight).
pub(crate) fn quantize_weight(w: f64) -> u16 {
    if w.is_nan() || w <= 0.0 {
        return 0;
    }
    let scaled = (w.ln() + 110.0) / 135.0 * 65534.0;
    let code = 1.0 + scaled.round();
    code.clamp(1.0, 65535.0) as u16
}

/// One grouped stratum under construction: entries in (key, weight desc,
/// id asc) order with globally cumulative prefix sums, each group's
/// `(start, exact total)` bound, plus the keyed directory when the
/// caller needs one.
struct StratumBuild {
    entries: Vec<Posting>,
    prefix: Vec<f64>,
    bounds: Vec<(u32, f64)>,
    groups: HashMap<TermId, Group>,
    keys: Vec<TermId>,
}

/// Sorts all triples by `(key, weight desc, id asc)` and normalizes each
/// key's run over its own total. Group totals are accumulated in sorted
/// order, so a probability here is bit-identical to what the reference
/// scan path computes for the same match set.
fn grouped_stratum(
    weights: &[f64],
    key_of: impl Fn(usize) -> TermId,
    with_groups: bool,
) -> StratumBuild {
    let n = weights.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        key_of(a as usize)
            .cmp(&key_of(b as usize))
            .then_with(|| weights[b as usize].total_cmp(&weights[a as usize]))
            .then_with(|| a.cmp(&b))
    });

    let mut entries: Vec<Posting> = Vec::with_capacity(n);
    let mut prefix: Vec<f64> = Vec::with_capacity(n + 1);
    let mut acc = 0.0f64;
    prefix.push(acc);
    let mut bounds: Vec<(u32, f64)> = Vec::new();
    let mut groups: HashMap<TermId, Group> = HashMap::new();
    let mut keys: Vec<TermId> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let key = key_of(order[i] as usize);
        let mut j = i;
        let mut total = 0.0f64;
        while j < n && key_of(order[j] as usize) == key {
            total += weights[order[j] as usize];
            j += 1;
        }
        for &id in &order[i..j] {
            let weight = weights[id as usize];
            entries.push(Posting {
                triple: TripleId(id),
                weight,
                prob: if total > 0.0 { weight / total } else { 0.0 },
            });
            acc += weight;
            prefix.push(acc);
        }
        bounds.push((i as u32, total));
        if with_groups {
            groups.insert(
                key,
                Group {
                    start: i as u32,
                    end: j as u32,
                    total_weight: total,
                },
            );
            keys.push(key);
        }
        i = j;
    }
    keys.sort_unstable();
    StratumBuild {
        entries,
        prefix,
        bounds,
        groups,
        keys,
    }
}

/// The global `(weight desc, id asc)` stratum, normalized over the store.
fn global_stratum(weights: &[f64]) -> (StratumBuild, f64) {
    let n = weights.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then_with(|| a.cmp(&b))
    });
    let total: f64 = weights.iter().sum();
    let mut entries: Vec<Posting> = Vec::with_capacity(n);
    let mut prefix: Vec<f64> = Vec::with_capacity(n + 1);
    let mut acc = 0.0f64;
    prefix.push(acc);
    for &id in &order {
        let weight = weights[id as usize];
        entries.push(Posting {
            triple: TripleId(id),
            weight,
            prob: if total > 0.0 { weight / total } else { 0.0 },
        });
        acc += weight;
        prefix.push(acc);
    }
    (
        StratumBuild {
            entries,
            prefix,
            bounds: vec![(0, total)],
            groups: HashMap::new(),
            keys: Vec::new(),
        },
        total,
    )
}

/// One stratum's frozen storage, in the segment's layout.
#[derive(Debug)]
enum StratumData {
    /// Borrowable entry + prefix columns (32 B/entry).
    Flat { entries: Vec<Posting>, prefix: Vec<f64> },
    /// Packed ids + quantized weight codes + exact scaffolding.
    Packed(PackedStratum),
}

/// A stratum in the Packed layout. See the module docs for the
/// exactness argument: quantized codes store the weights, the exact
/// `f64` scaffolding (block checkpoints + group totals, with weights
/// recomputed from retained provenance) restores bit-identical scores
/// on decode.
#[derive(Debug)]
struct PackedStratum {
    /// Triple ids in stratum order, at fixed width `ceil_log2(n)`.
    ids: PackedInts,
    /// u16 log-domain weight codes, aligned with `ids`.
    codes: Vec<u16>,
    /// Exact prefix-sum checkpoints at block boundaries:
    /// `checkpoints[b]` is the build-time `prefix[b · BLOCK]`.
    checkpoints: Vec<f64>,
    /// Ascending group starts (the global stratum is one group at 0).
    group_starts: Vec<u32>,
    /// Exact build-time group totals, aligned with `group_starts`.
    group_totals: Vec<f64>,
    /// Exact build-time prefix values at each group start, aligned with
    /// `group_starts`. Group serves begin at a group boundary, so this
    /// anchor makes their prefix reconstruction O(1) instead of a
    /// replay from the containing block checkpoint.
    group_prefixes: Vec<f64>,
}

impl PackedStratum {
    fn from_build(b: &StratumBuild) -> PackedStratum {
        PackedStratum {
            ids: PackedInts::from_values(b.entries.iter().map(|e| u64::from(e.triple.0))),
            codes: b.entries.iter().map(|e| quantize_weight(e.weight)).collect(),
            checkpoints: b.prefix.iter().copied().step_by(BLOCK).collect(),
            group_starts: b.bounds.iter().map(|g| g.0).collect(),
            group_totals: b.bounds.iter().map(|g| g.1).collect(),
            group_prefixes: b
                .bounds
                .iter()
                .map(|g| b.prefix.get(g.0 as usize).copied().unwrap_or(0.0))
                .collect(),
        }
    }

    /// The exact build-time total of the group containing offset
    /// `start` (0.0 when the stratum is empty).
    fn group_total(&self, start: usize) -> f64 {
        let i = self.group_starts.partition_point(|&s| (s as usize) <= start);
        if i == 0 {
            0.0
        } else {
            self.group_totals.get(i - 1).copied().unwrap_or(0.0)
        }
    }

    /// Exact weight of the entry at `i`, recomputed from provenance
    /// (bit-identical to the build-time product; out-of-range degrades
    /// to 0.0 rather than panicking — this sits on serving paths).
    #[inline]
    fn weight_at(&self, i: usize, prov: &[Provenance]) -> f64 {
        let id = self.ids.get(i) as usize;
        prov.get(id).map_or(0.0, Provenance::weight)
    }

    /// The exact build-time prefix-sum value at offset `i`: the nearest
    /// exact anchor at or below `i` — the containing group's stored
    /// start prefix or the containing block's checkpoint, whichever is
    /// closer — plus a forward re-accumulation of the recomputed
    /// weights. Replaying the same additions in the same order the
    /// build performed from an exact build-time value reproduces
    /// `prefix[i]` bit for bit; group-aligned offsets (every group
    /// serve) replay nothing.
    fn prefix_at(&self, i: usize, prov: &[Provenance]) -> f64 {
        let block_anchor = (i / BLOCK) * BLOCK;
        let g = self.group_starts.partition_point(|&s| (s as usize) <= i);
        let (from, mut acc) = match g.checked_sub(1) {
            Some(k) if (self.group_starts[k] as usize) >= block_anchor => (
                self.group_starts[k] as usize,
                self.group_prefixes.get(k).copied().unwrap_or(0.0),
            ),
            _ => (
                block_anchor,
                self.checkpoints.get(i / BLOCK).copied().unwrap_or(0.0),
            ),
        };
        for j in from..i {
            acc += self.weight_at(j, prov);
        }
        acc
    }
}

impl StratumData {
    fn from_build(b: StratumBuild, layout: SegmentLayout) -> StratumData {
        match layout {
            SegmentLayout::Flat => StratumData::Flat {
                entries: b.entries,
                prefix: b.prefix,
            },
            SegmentLayout::Packed => StratumData::Packed(PackedStratum::from_build(&b)),
        }
    }

    fn len(&self) -> usize {
        match self {
            StratumData::Flat { entries, .. } => entries.len(),
            StratumData::Packed(p) => p.ids.len(),
        }
    }

    /// Serves `span` (one group, or a prefix-aligned run of one): a
    /// borrowed slice pair on Flat, a decoded scratch pair on Packed.
    ///
    /// The decode is bit-identical to the Flat columns: weights are the
    /// same provenance products the build evaluated, probabilities
    /// divide by the stored exact group total, and the prefix column
    /// re-accumulates forward from the nearest block checkpoint — the
    /// same additions in the same order as the build.
    fn serve(&self, span: Range<usize>, prov: &[Provenance]) -> GroupRef<'_> {
        match self {
            StratumData::Flat { entries, prefix } => GroupRef::Borrowed {
                entries: &entries[span.clone()],
                prefix: &prefix[span.start..=span.end],
            },
            StratumData::Packed(p) => {
                let total = p.group_total(span.start);
                let mut entries = Vec::with_capacity(span.len());
                let mut prefix = Vec::with_capacity(span.len() + 1);
                // Re-accumulate the global prefix from the checkpoint at
                // the containing block's boundary.
                let mut acc = p.prefix_at(span.start, prov);
                prefix.push(acc);
                for i in span {
                    let id = TripleId(p.ids.get(i) as u32);
                    let weight = prov.get(id.idx()).map_or(0.0, Provenance::weight);
                    debug_assert_eq!(
                        p.codes.get(i).copied(),
                        Some(quantize_weight(weight)),
                        "stored weight code diverged from provenance recompute"
                    );
                    entries.push(Posting {
                        triple: id,
                        weight,
                        prob: if total > 0.0 { weight / total } else { 0.0 },
                    });
                    acc += weight;
                    prefix.push(acc);
                }
                GroupRef::Decoded { entries, prefix }
            }
        }
    }

    /// Entries-only variant of [`StratumData::serve`]: identical entry
    /// values, no prefix-column reconstruction. For consumers that keep
    /// the entry array and drop the prefix sums (the query layer's
    /// posting caches do exactly that), the skipped replay saves one
    /// allocation plus an f64 accumulation per entry on Packed serves.
    fn serve_entries(&self, span: Range<usize>, prov: &[Provenance]) -> EntriesRef<'_> {
        match self {
            StratumData::Flat { entries, .. } => EntriesRef::Borrowed(&entries[span]),
            StratumData::Packed(p) => {
                let total = p.group_total(span.start);
                let mut entries = Vec::with_capacity(span.len());
                for i in span {
                    let id = TripleId(p.ids.get(i) as u32);
                    let weight = prov.get(id.idx()).map_or(0.0, Provenance::weight);
                    debug_assert_eq!(
                        p.codes.get(i).copied(),
                        Some(quantize_weight(weight)),
                        "stored weight code diverged from provenance recompute"
                    );
                    entries.push(Posting {
                        triple: id,
                        weight,
                        prob: if total > 0.0 { weight / total } else { 0.0 },
                    });
                }
                EntriesRef::Owned(entries)
            }
        }
    }

    /// The head entry of the group starting `span` (O(1) in both
    /// layouts), or `None` for an empty span.
    fn head(&self, span: Range<usize>, prov: &[Provenance]) -> Option<Posting> {
        if span.is_empty() {
            return None;
        }
        match self {
            StratumData::Flat { entries, .. } => entries.get(span.start).copied(),
            StratumData::Packed(p) => {
                let id = TripleId(p.ids.get(span.start) as u32);
                let weight = prov.get(id.idx()).map_or(0.0, Provenance::weight);
                let total = p.group_total(span.start);
                Some(Posting {
                    triple: id,
                    weight,
                    prob: if total > 0.0 { weight / total } else { 0.0 },
                })
            }
        }
    }

    /// The exact emission-weight total over `span` as the Flat prefix
    /// column reports it (`prefix[end] − prefix[start]`), bit-identical
    /// in both layouts.
    fn span_total(&self, span: Range<usize>, prov: &[Provenance]) -> f64 {
        match self {
            StratumData::Flat { prefix, .. } => {
                prefix.get(span.end).copied().unwrap_or(0.0)
                    - prefix.get(span.start).copied().unwrap_or(0.0)
            }
            StratumData::Packed(p) => p.prefix_at(span.end, prov) - p.prefix_at(span.start, prov),
        }
    }

    /// Heap bytes as `(columns, scaffolding)`: the entry/prefix payload
    /// versus the packed layout's exact-f64 directories.
    fn heap_bytes(&self) -> (usize, usize) {
        match self {
            StratumData::Flat { entries, prefix } => (
                entries.capacity() * std::mem::size_of::<Posting>()
                    + prefix.capacity() * std::mem::size_of::<f64>(),
                0,
            ),
            StratumData::Packed(p) => (
                p.ids.heap_bytes() + p.codes.capacity() * 2,
                p.checkpoints.capacity() * 8
                    + p.group_starts.capacity() * 4
                    + p.group_totals.capacity() * 8
                    + p.group_prefixes.capacity() * 8,
            ),
        }
    }
}

/// A stratum group as served for one pattern: score-sorted entries plus
/// the aligned (one-longer) prefix-sum column — borrowed from a Flat
/// stratum, or decoded into owned scratch from a Packed one. The values
/// are bit-identical either way.
#[derive(Debug)]
pub enum GroupRef<'s> {
    /// Borrowed directly from Flat stratum columns.
    Borrowed {
        /// Score-sorted entries of the group.
        entries: &'s [Posting],
        /// Globally cumulative prefix sums aligned with `entries`
        /// (one entry longer).
        prefix: &'s [f64],
    },
    /// Decoded from a Packed stratum.
    Decoded {
        /// Score-sorted entries of the group.
        entries: Vec<Posting>,
        /// Reconstructed prefix sums aligned with `entries`.
        prefix: Vec<f64>,
    },
}

impl<'s> GroupRef<'s> {
    /// The group's score-sorted entries.
    pub fn entries(&self) -> &[Posting] {
        match self {
            GroupRef::Borrowed { entries, .. } => entries,
            GroupRef::Decoded { entries, .. } => entries,
        }
    }

    /// The aligned prefix-sum column (one entry longer than `entries`).
    pub fn prefix(&self) -> &[f64] {
        match self {
            GroupRef::Borrowed { prefix, .. } => prefix,
            GroupRef::Decoded { prefix, .. } => prefix,
        }
    }

    /// Number of entries in the group.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// True when the group has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// The group's emission-weight total as the serve path computes it:
    /// last minus first prefix value (0.0 for an empty group).
    pub fn span_total(&self) -> f64 {
        let pre = self.prefix();
        pre.last().unwrap_or(&0.0) - pre.first().unwrap_or(&0.0)
    }

    /// Wraps the group into a [`PostingList`] with the given
    /// normalizer total, preserving the borrow when there is one.
    pub(crate) fn into_list(self, total: f64, kind: ServeKind) -> PostingList<'s> {
        match self {
            GroupRef::Borrowed { entries, prefix } => {
                PostingList::borrowed(entries, Some(prefix), total, kind)
            }
            GroupRef::Decoded { entries, prefix } => {
                PostingList::owned_with_prefix(entries, prefix, total, kind)
            }
        }
    }
}

/// One served group's entries without its prefix column — borrowed
/// from a Flat stratum, or decoded entries-only from a Packed one (no
/// prefix reconstruction). Produced by [`PostingList::build_entries`]
/// for consumers that cache the entry array and discard the prefix
/// sums; values are bit-identical to the [`GroupRef`] serve.
#[derive(Debug)]
pub enum EntriesRef<'s> {
    /// Borrowed directly from Flat stratum columns.
    Borrowed(&'s [Posting]),
    /// Decoded from a Packed stratum (or materialized by a filter).
    Owned(Vec<Posting>),
}

impl EntriesRef<'_> {
    /// The served entries, in descending score order.
    #[inline]
    pub fn as_slice(&self) -> &[Posting] {
        match self {
            EntriesRef::Borrowed(s) => s,
            EntriesRef::Owned(v) => v,
        }
    }

    /// Freezes into a shareable cache payload — exactly one copy from
    /// either variant (a borrow copies straight into the `Arc`
    /// allocation with no intermediate `Vec`).
    pub fn into_arc(self) -> Arc<[Posting]> {
        match self {
            EntriesRef::Borrowed(s) => Arc::from(s),
            EntriesRef::Owned(v) => v.into(),
        }
    }

    /// The entries as an owned vector (a borrow copies; an owned decode
    /// moves).
    pub fn into_vec(self) -> Vec<Posting> {
        match self {
            EntriesRef::Borrowed(s) => s.to_vec(),
            EntriesRef::Owned(v) => v,
        }
    }
}

/// Below this table size the four strata build sequentially; above it,
/// each sorts on its own scoped thread (they are independent).
const PARALLEL_STRATA_THRESHOLD: usize = 4096;

/// Build-time score-sorted posting index over a frozen triple table.
///
/// Flat memory: 32 bytes/triple each (24-byte entry + 8-byte prefix
/// sum) for the predicate, subject, object, and global strata — 128
/// bytes/triple total. Packed memory: `ceil_log2(n)`-bit ids + 2-byte
/// codes + ~0.07 bytes/triple of checkpoint scaffolding per stratum,
/// typically 4–7 bytes/triple/stratum. The anchored (subject/object)
/// strata carry **no keyed group directory** in either layout: their
/// group order is the primary-key order of the SPO / OSP permutation
/// columns, so a group's span is the permutation's binary-searched
/// range, shared rather than duplicated (Packed keeps only the
/// start-aligned exact group totals the decode needs).
#[derive(Debug, Default)]
pub struct PostingIndex {
    /// All triples sorted by (predicate, weight desc, id asc).
    by_pred: Option<StratumData>,
    /// Predicate → its contiguous group.
    groups: HashMap<TermId, Group>,
    /// Predicates in ascending term-id order (deterministic iteration).
    predicates: Vec<TermId>,
    /// All triples sorted by (subject, weight desc, id asc). Group spans
    /// are shared with the SPO permutation column.
    by_subj: Option<StratumData>,
    /// All triples sorted by (object, weight desc, id asc). Group spans
    /// are shared with the OSP permutation column.
    by_obj: Option<StratumData>,
    /// All triples sorted by (weight desc, id asc), normalized globally.
    all: Option<StratumData>,
    /// Total emission weight of the whole store.
    all_total: f64,
}

impl PostingIndex {
    /// Builds the four strata in the requested layout. `prov[i]` and
    /// `triples[i]` belong to the triple with id `i`. Weights are
    /// assumed finite (enforced at ingestion by `XkgBuilder`); ordering
    /// uses `total_cmp`, so even a hostile weight cannot panic here.
    pub(crate) fn build(
        triples: &[Triple],
        prov: &[Provenance],
        layout: SegmentLayout,
    ) -> PostingIndex {
        let n = prov.len();
        let weights: Vec<f64> = prov.iter().map(Provenance::weight).collect();
        debug_assert!(
            weights.iter().all(|w| w.is_finite()),
            "weights are validated at ingestion"
        );

        let weights = &weights;
        let build_pred = || grouped_stratum(weights, |i| triples[i].p, true);
        let build_subj = || grouped_stratum(weights, |i| triples[i].s, false);
        let build_obj = || grouped_stratum(weights, |i| triples[i].o, false);
        let build_all = || global_stratum(weights);

        let (pred, subj, obj, (all, all_total)) = if n < PARALLEL_STRATA_THRESHOLD {
            (build_pred(), build_subj(), build_obj(), build_all())
        } else {
            std::thread::scope(|scope| {
                let hs = scope.spawn(build_subj);
                let ho = scope.spawn(build_obj);
                let ha = scope.spawn(build_all);
                (
                    build_pred(),
                    // lint:allow(no-panic-hot-path): build-time joins — a panicked stratum build leaves nothing to serve and must surface at freeze
                    hs.join().expect("subject stratum thread panicked"),
                    // lint:allow(no-panic-hot-path): build-time join, as above
                    ho.join().expect("object stratum thread panicked"),
                    // lint:allow(no-panic-hot-path): build-time join, as above
                    ha.join().expect("global stratum thread panicked"),
                )
            })
        };

        let groups = pred.groups.clone();
        let predicates = pred.keys.clone();
        PostingIndex {
            by_pred: Some(StratumData::from_build(pred, layout)),
            groups,
            predicates,
            by_subj: Some(StratumData::from_build(subj, layout)),
            by_obj: Some(StratumData::from_build(obj, layout)),
            all: Some(StratumData::from_build(all, layout)),
            all_total,
        }
    }

    /// The predicates present in the store, ascending by term id.
    pub fn predicates(&self) -> &[TermId] {
        &self.predicates
    }

    /// Number of triples in one predicate's group (0 if absent) —
    /// O(1) from the directory, no entry access in either layout.
    pub fn predicate_group_len(&self, p: TermId) -> usize {
        self.groups
            .get(&p)
            .map_or(0, |g| (g.end - g.start) as usize)
    }

    /// Total emission weight under one predicate.
    pub fn predicate_total_weight(&self, p: TermId) -> f64 {
        self.groups.get(&p).map_or(0.0, |g| g.total_weight)
    }

    /// Total emission weight of the store.
    pub fn total_weight(&self) -> f64 {
        self.all_total
    }

    /// Serves one predicate's group (empty for an absent predicate).
    pub(crate) fn predicate_serve(&self, p: TermId, prov: &[Provenance]) -> GroupRef<'_> {
        let span = self
            .groups
            .get(&p)
            .map_or(0..0, |g| g.start as usize..g.end as usize);
        self.stratum(&self.by_pred).serve(span, prov)
    }

    /// Serves the global unbound stratum.
    pub(crate) fn all_serve(&self, prov: &[Provenance]) -> GroupRef<'_> {
        let s = self.stratum(&self.all);
        s.serve(0..s.len(), prov)
    }

    /// Serves the subject stratum over `span` — the SPO permutation's
    /// range for that subject (the two share key order, which is why no
    /// subject group map exists).
    pub(crate) fn subject_serve(&self, span: Range<usize>, prov: &[Provenance]) -> GroupRef<'_> {
        self.stratum(&self.by_subj).serve(span, prov)
    }

    /// Serves the object stratum over `span` — the OSP permutation's
    /// range for that object.
    pub(crate) fn object_serve(&self, span: Range<usize>, prov: &[Provenance]) -> GroupRef<'_> {
        self.stratum(&self.by_obj).serve(span, prov)
    }

    /// Entries-only serve of one predicate's group (see
    /// [`StratumData::serve_entries`]).
    pub(crate) fn predicate_serve_entries(
        &self,
        p: TermId,
        prov: &[Provenance],
    ) -> EntriesRef<'_> {
        let span = self
            .groups
            .get(&p)
            .map_or(0..0, |g| g.start as usize..g.end as usize);
        self.stratum(&self.by_pred).serve_entries(span, prov)
    }

    /// Entries-only serve of the global unbound stratum.
    pub(crate) fn all_serve_entries(&self, prov: &[Provenance]) -> EntriesRef<'_> {
        let s = self.stratum(&self.all);
        s.serve_entries(0..s.len(), prov)
    }

    /// Entries-only serve of the subject stratum over `span`.
    pub(crate) fn subject_serve_entries(
        &self,
        span: Range<usize>,
        prov: &[Provenance],
    ) -> EntriesRef<'_> {
        self.stratum(&self.by_subj).serve_entries(span, prov)
    }

    /// Entries-only serve of the object stratum over `span`.
    pub(crate) fn object_serve_entries(
        &self,
        span: Range<usize>,
        prov: &[Provenance],
    ) -> EntriesRef<'_> {
        self.stratum(&self.by_obj).serve_entries(span, prov)
    }

    /// Head entry of a predicate group, O(1).
    pub(crate) fn predicate_head(&self, p: TermId, prov: &[Provenance]) -> Option<Posting> {
        let span = self
            .groups
            .get(&p)
            .map_or(0..0, |g| g.start as usize..g.end as usize);
        self.stratum(&self.by_pred).head(span, prov)
    }

    /// Head entry of the global stratum, O(1).
    pub(crate) fn global_head(&self, prov: &[Provenance]) -> Option<Posting> {
        let s = self.stratum(&self.all);
        s.head(0..s.len(), prov)
    }

    /// Head entry of the subject stratum over `span`, O(1).
    pub(crate) fn subject_head(&self, span: Range<usize>, prov: &[Provenance]) -> Option<Posting> {
        self.stratum(&self.by_subj).head(span, prov)
    }

    /// Head entry of the object stratum over `span`, O(1).
    pub(crate) fn object_head(&self, span: Range<usize>, prov: &[Provenance]) -> Option<Posting> {
        self.stratum(&self.by_obj).head(span, prov)
    }

    /// Exact emission-weight total of the subject stratum over `span`,
    /// as the prefix column difference (bit-identical in both layouts).
    pub(crate) fn subject_span_total(&self, span: Range<usize>, prov: &[Provenance]) -> f64 {
        self.stratum(&self.by_subj).span_total(span, prov)
    }

    /// Exact emission-weight total of the object stratum over `span`.
    pub(crate) fn object_span_total(&self, span: Range<usize>, prov: &[Provenance]) -> f64 {
        self.stratum(&self.by_obj).span_total(span, prov)
    }

    /// The stratum behind an `Option` field (`Default` leaves them
    /// `None`; a built index always fills them). Served as a degenerate
    /// empty Flat stratum when absent so serving paths never panic.
    fn stratum<'a>(&self, field: &'a Option<StratumData>) -> &'a StratumData {
        static EMPTY: StratumData = StratumData::Flat {
            entries: Vec::new(),
            prefix: Vec::new(),
        };
        field.as_ref().unwrap_or(&EMPTY)
    }

    /// Heap bytes held by the four strata, as
    /// `(stratum columns, directories)` — the directory share counts
    /// the predicate group map plus the packed layout's exact-f64
    /// scaffolding.
    pub fn heap_bytes(&self) -> (usize, usize) {
        let mut columns = 0;
        let mut directories = self.groups.capacity()
            * (std::mem::size_of::<TermId>() + std::mem::size_of::<Group>())
            + self.predicates.capacity() * std::mem::size_of::<TermId>();
        for s in [&self.by_pred, &self.by_subj, &self.by_obj, &self.all]
            .into_iter()
            .flatten()
        {
            let (c, d) = s.heap_bytes();
            columns += c;
            directories += d;
        }
        (columns, directories)
    }
}

/// Where a posting list's entries live.
#[derive(Debug, Clone)]
enum Entries<'s> {
    /// Borrowed straight from the store's [`PostingIndex`] (hot path:
    /// zero allocations, zero sorting).
    Borrowed(&'s [Posting]),
    /// Materialized for pattern shapes outside the precomputed index,
    /// or decoded from a Packed stratum.
    Owned(Vec<Posting>),
    /// Shared with a caller-managed cache (see the query layer's
    /// posting-cache hierarchy); each list keeps its own cursor.
    /// `Arc` so cross-query caches can live behind `Sync` facades.
    Shared(Arc<[Posting]>),
}

impl Entries<'_> {
    #[inline]
    fn as_slice(&self) -> &[Posting] {
        match self {
            Entries::Borrowed(s) => s,
            Entries::Owned(v) => v,
            Entries::Shared(rc) => rc,
        }
    }
}

/// Where a posting list's prefix-sum column lives (aligned with the
/// entries, one element longer, when present).
#[derive(Debug, Clone, Default)]
enum PrefixCol<'s> {
    /// No prefix column: remaining weight tracks consumption instead.
    #[default]
    None,
    /// Borrowed from a Flat stratum.
    Borrowed(&'s [f64]),
    /// Reconstructed from a Packed stratum's checkpoints.
    Owned(Vec<f64>),
    /// Shared with a cross-query cache.
    Shared(Arc<[f64]>),
}

impl PrefixCol<'_> {
    #[inline]
    fn as_slice(&self) -> Option<&[f64]> {
        match self {
            PrefixCol::None => None,
            PrefixCol::Borrowed(s) => Some(s),
            PrefixCol::Owned(v) => Some(v),
            PrefixCol::Shared(rc) => Some(rc),
        }
    }
}

/// The matches of a triple pattern in descending score order, with a cursor
/// for incremental sorted access.
///
/// Borrows from the store's precomputed [`PostingIndex`] when the pattern
/// shape and segment layout allow (predicate-only, unbound, subject-only,
/// and object-only patterns on Flat segments); Packed segments decode the
/// same groups into owned scratch with bit-identical values; composite
/// anchored shapes own a single filtered — never sorted — list.
#[derive(Debug, Clone)]
pub struct PostingList<'s> {
    entries: Entries<'s>,
    /// Prefix-summed weights aligned with `entries` (one entry longer),
    /// when served from the precomputed index.
    prefix: PrefixCol<'s>,
    total_weight: f64,
    /// Weight consumed by the cursor so far, maintained incrementally so
    /// [`PostingList::remaining_weight`] is O(1) even for materialized
    /// lists without a prefix column.
    consumed_weight: f64,
    cursor: usize,
    kind: ServeKind,
}

/// Cache-shareable split of a [`PostingList`]: entries, the aligned
/// prefix column when the list was index-served, and the total weight.
pub type SharedParts = (Arc<[Posting]>, Option<Arc<[f64]>>, f64);

impl<'s> PostingList<'s> {
    /// A borrowed index slice, or the canonical empty list when the
    /// slice's emission mass is zero (a zero-mass match set emits
    /// nothing — its entries all carry probability 0).
    fn borrowed(
        entries: &'s [Posting],
        prefix: Option<&'s [f64]>,
        total_weight: f64,
        kind: ServeKind,
    ) -> PostingList<'s> {
        if total_weight <= 0.0 {
            return PostingList {
                entries: Entries::Borrowed(&[]),
                prefix: PrefixCol::None,
                total_weight: 0.0,
                consumed_weight: 0.0,
                cursor: 0,
                kind,
            };
        }
        PostingList {
            entries: Entries::Borrowed(entries),
            prefix: prefix.map_or(PrefixCol::None, PrefixCol::Borrowed),
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind,
        }
    }

    /// An owned list from already-ordered entries (empty when massless).
    fn owned(entries: Vec<Posting>, total_weight: f64, kind: ServeKind) -> PostingList<'static> {
        if total_weight <= 0.0 {
            return PostingList {
                entries: Entries::Owned(Vec::new()),
                prefix: PrefixCol::None,
                total_weight: 0.0,
                consumed_weight: 0.0,
                cursor: 0,
                kind,
            };
        }
        PostingList {
            entries: Entries::Owned(entries),
            prefix: PrefixCol::None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind,
        }
    }

    /// An owned list carrying its reconstructed prefix column — the
    /// Packed decode of an index-served group (empty when massless,
    /// exactly like the borrowed constructor).
    fn owned_with_prefix(
        entries: Vec<Posting>,
        prefix: Vec<f64>,
        total_weight: f64,
        kind: ServeKind,
    ) -> PostingList<'static> {
        if total_weight <= 0.0 {
            return PostingList {
                entries: Entries::Owned(Vec::new()),
                prefix: PrefixCol::None,
                total_weight: 0.0,
                consumed_weight: 0.0,
                cursor: 0,
                kind,
            };
        }
        PostingList {
            entries: Entries::Owned(entries),
            prefix: PrefixCol::Owned(prefix),
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind,
        }
    }

    /// Builds the posting list for `pattern` over `store`.
    ///
    /// Ties in weight are broken by triple id so iteration order is
    /// deterministic. Predicate-only, unbound, subject-only, and
    /// object-only patterns are served from the store's posting index
    /// without sorting (borrowed on Flat, decoded on Packed); every
    /// other shape filters the smallest covering group — one
    /// allocation, zero sorts.
    pub fn build(store: &'s XkgStore, pattern: &SlotPattern) -> PostingList<'s> {
        let index = store.posting_index();
        match (pattern.s, pattern.p, pattern.o) {
            (None, Some(p), None) => store
                .predicate_group(p)
                .into_list(index.predicate_total_weight(p), ServeKind::Predicate),
            (None, None, None) => store
                .unbound_group()
                .into_list(index.total_weight(), ServeKind::Unbound),
            (Some(s), None, None) => {
                let group = store.subject_group(s);
                let total = group.span_total();
                group.into_list(total, ServeKind::Subject)
            }
            (None, None, Some(o)) => {
                let group = store.object_group(o);
                let total = group.span_total();
                group.into_list(total, ServeKind::Object)
            }
            _ => PostingList::filtered(store, pattern),
        }
    }

    /// Entries-only variant of [`PostingList::build`] for consumers
    /// that cache the entry array and drop the prefix column (the
    /// query layer's exec and shared posting caches do exactly that).
    /// Flat segments hand back a borrow — the caller's one copy goes
    /// straight into the cache payload — and Packed segments decode
    /// entries without reconstructing the prefix sums. Entry values,
    /// totals, and serve kinds match `build` bit for bit.
    pub fn build_entries(
        store: &'s XkgStore,
        pattern: &SlotPattern,
    ) -> (EntriesRef<'s>, f64, ServeKind) {
        if let Some((entries, total, kind)) = store.group_entries(pattern) {
            // Mirror the zero-total normalization of the list
            // constructors: a group whose weights sum to nothing serves
            // as empty rather than as undefined probabilities.
            if total <= 0.0 {
                return (EntriesRef::Owned(Vec::new()), 0.0, kind);
            }
            return (entries, total, kind);
        }
        let list = PostingList::filtered(store, pattern);
        let total = list.total_weight();
        let kind = list.serve_kind();
        (EntriesRef::Owned(list.into_entries()), total, kind)
    }

    /// Serves a composite shape (sp / op / so / ground) from the index.
    /// The default path filters the smallest covering group — already in
    /// (weight desc, id asc) order, so no sort; probabilities
    /// renormalize over the filtered total, summed in entry order
    /// (bit-identical to the scan reference). When the permutation
    /// index's *exact* match range is far smaller than every covering
    /// group (a ground pattern over hub terms can match 1 triple while
    /// each group holds millions), the range itself is materialized and
    /// weight-ordered instead — O(matches · log matches) beats an
    /// unbounded group walk. Group sizes are measured by span arithmetic
    /// alone, so Packed segments decode at most one group.
    fn filtered(store: &'s XkgStore, pattern: &SlotPattern) -> PostingList<'s> {
        // Span arithmetic only: materializing the match ids here would
        // cost a Packed segment a decode + allocation even when the
        // group-filter branch below never looks at them.
        let match_count = store.count(pattern);
        if match_count == 0 {
            return PostingList::owned(Vec::new(), 0.0, ServeKind::Filtered);
        }
        enum Cover {
            Subject(TermId),
            Object(TermId),
            Predicate(TermId),
        }
        let mut best: Option<(usize, Cover)> = None;
        let mut consider = |len: usize, key: Cover| {
            if best.as_ref().is_none_or(|(best_len, _)| len < *best_len) {
                best = Some((len, key));
            }
        };
        if let Some(s) = pattern.s {
            consider(
                store.count(&SlotPattern::new(Some(s), None, None)),
                Cover::Subject(s),
            );
        }
        if let Some(o) = pattern.o {
            consider(
                store.count(&SlotPattern::new(None, None, Some(o))),
                Cover::Object(o),
            );
        }
        if let Some(p) = pattern.p {
            consider(store.posting_index().predicate_group_len(p), Cover::Predicate(p));
        }
        let Some((group_len, cover)) = best else {
            // Composite shapes always bind a slot; if a malformed shape
            // ever lands here, degrade to the exact-range serve.
            return PostingList::from_match_ids(store, &store.lookup(pattern), ServeKind::Range);
        };
        if match_count * 4 <= group_len {
            return PostingList::from_match_ids(store, &store.lookup(pattern), ServeKind::Range);
        }
        let group = match cover {
            Cover::Subject(s) => store.subject_group(s),
            Cover::Object(o) => store.object_group(o),
            Cover::Predicate(p) => store.predicate_group(p),
        };
        let mut entries: Vec<Posting> = group
            .entries()
            .iter()
            .filter(|e| pattern.matches(store.triple(e.triple)))
            .copied()
            .collect();
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        for e in &mut entries {
            e.prob = if total > 0.0 { e.weight / total } else { 0.0 };
        }
        PostingList::owned(entries, total, ServeKind::Filtered)
    }

    /// Materializes an exact match-id set and orders it by
    /// (weight desc, id asc), totalling in sorted order — bit-identical
    /// to the index strata's per-group accumulation.
    fn from_match_ids(
        store: &XkgStore,
        ids: &[TripleId],
        kind: ServeKind,
    ) -> PostingList<'static> {
        let mut raw: Vec<(TripleId, f64)> = ids
            .iter()
            .map(|&id| (id, store.provenance(id).weight()))
            .collect();
        raw.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total: f64 = raw.iter().map(|(_, w)| w).sum();
        let entries = raw
            .into_iter()
            .map(|(triple, weight)| Posting {
                triple,
                weight,
                prob: if total > 0.0 { weight / total } else { 0.0 },
            })
            .collect();
        PostingList::owned(entries, total, kind)
    }

    /// The pre-index reference implementation: materializes the
    /// permutation range and sorts it by (weight desc, id asc). Kept for
    /// property tests (every [`PostingList::build`] result must be
    /// entry-for-entry equal) and as the "before" side of the anchored
    /// benchmark; the engines never call it.
    pub fn build_by_scan(store: &XkgStore, pattern: &SlotPattern) -> PostingList<'static> {
        PostingList::from_match_ids(store, &store.lookup(pattern), ServeKind::Scanned)
    }

    /// Wraps an externally materialized, already score-sorted entry list.
    /// Used by the query layer's filtered views over this machinery.
    pub fn from_owned(entries: Vec<Posting>, total_weight: f64) -> PostingList<'static> {
        PostingList {
            entries: Entries::Owned(entries),
            prefix: PrefixCol::None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind: ServeKind::External,
        }
    }

    /// Wraps a cache-shared, already score-sorted entry list. The list
    /// gets its own cursor; the entries are not copied.
    pub fn from_shared(entries: Arc<[Posting]>, total_weight: f64) -> PostingList<'static> {
        PostingList {
            entries: Entries::Shared(entries),
            prefix: PrefixCol::None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind: ServeKind::External,
        }
    }

    /// Wraps cache-shared entries together with their aligned prefix
    /// column — how decoded Packed groups are re-served from the query
    /// layer's caches with the same O(1) remaining-weight reads as the
    /// Flat borrow path.
    pub fn from_shared_parts(
        entries: Arc<[Posting]>,
        prefix: Option<Arc<[f64]>>,
        total_weight: f64,
    ) -> PostingList<'static> {
        PostingList {
            entries: Entries::Shared(entries),
            prefix: prefix.map_or(PrefixCol::None, PrefixCol::Shared),
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind: ServeKind::External,
        }
    }

    /// Splits the list into cache-shareable parts: entries, the aligned
    /// prefix column when the list was index-served, and the total
    /// weight. Copies only when the parts were borrowed.
    pub fn into_shared_parts(self) -> SharedParts {
        let entries: Arc<[Posting]> = match self.entries {
            Entries::Owned(v) => v.into(),
            Entries::Borrowed(s) => s.into(),
            Entries::Shared(rc) => rc,
        };
        let prefix: Option<Arc<[f64]>> = match self.prefix {
            PrefixCol::None => None,
            PrefixCol::Borrowed(s) => Some(s.into()),
            PrefixCol::Owned(v) => Some(v.into()),
            PrefixCol::Shared(rc) => Some(rc),
        };
        (entries, prefix, self.total_weight)
    }

    /// Consumes the list into an owned entry vector (no copy when the
    /// entries were already materialized).
    pub fn into_entries(self) -> Vec<Posting> {
        match self.entries {
            Entries::Owned(v) => v,
            Entries::Borrowed(s) => s.to_vec(),
            Entries::Shared(rc) => rc.to_vec(),
        }
    }

    /// How this list was served (see [`ServeKind`]).
    #[inline]
    pub fn serve_kind(&self) -> ServeKind {
        self.kind
    }

    /// Total emission weight of all matches (the idf-like normalizer).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of matches.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.as_slice().len()
    }

    /// True if the pattern has no matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.as_slice().is_empty()
    }

    /// Entries in descending score order (ignores the cursor).
    #[inline]
    pub fn entries(&self) -> &[Posting] {
        self.entries.as_slice()
    }

    /// The next unconsumed posting, without advancing.
    #[inline]
    pub fn peek(&self) -> Option<Posting> {
        self.entries.as_slice().get(self.cursor).copied()
    }

    /// The emission probability of the next unconsumed posting (an upper
    /// bound on everything still in the list), or `None` if exhausted.
    #[inline]
    pub fn peek_prob(&self) -> Option<f64> {
        self.peek().map(|p| p.prob)
    }

    /// Consumes and returns the next posting in descending score order.
    #[inline]
    pub fn next_posting(&mut self) -> Option<Posting> {
        let p = self.peek()?;
        self.cursor += 1;
        self.consumed_weight += p.weight;
        Some(p)
    }

    /// Number of postings consumed so far (depth of sorted access).
    #[inline]
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Combined weight of the first `upto` entries. O(1) when served from
    /// the precomputed index (prefix sums), O(upto) otherwise.
    pub fn prefix_weight(&self, upto: usize) -> f64 {
        let upto = upto.min(self.len());
        match self.prefix.as_slice() {
            Some(pre) => pre[upto] - pre[0],
            None => self.entries.as_slice()[..upto]
                .iter()
                .map(|e| e.weight)
                .sum(),
        }
    }

    /// Emission weight not yet consumed by the cursor. O(1) for every
    /// list: index-served lists read the build-time prefix-sum columns,
    /// materialized lists use the consumed weight tracked by
    /// [`PostingList::next_posting`]. (The rank-join threshold asks for
    /// this every capping round.)
    #[inline]
    pub fn remaining_weight(&self) -> f64 {
        match self.prefix.as_slice() {
            Some(pre) => (self.total_weight - (pre[self.cursor] - pre[0])).max(0.0),
            None => (self.total_weight - self.consumed_weight).max(0.0),
        }
    }

    /// Resets the cursor to the start of the list.
    pub fn rewind(&mut self) {
        self.cursor = 0;
        self.consumed_weight = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{XkgBuilder, XkgStore};

    fn store_with_weights() -> XkgStore {
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("lecturedAt");
        let princeton = b.dict_mut().resource("Princeton");
        for (i, conf) in [(0u32, 0.9f32), (1, 0.5), (2, 0.7)] {
            let s = b.dict_mut().resource(&format!("person{i}"));
            let src = b.intern_source(&format!("doc{i}"));
            b.add_extracted(s, p, princeton, conf, src);
        }
        b.build()
    }

    #[test]
    fn postings_sorted_descending() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        assert_eq!(list.len(), 3);
        assert_eq!(list.serve_kind(), ServeKind::Predicate);
        let weights: Vec<f64> = list.entries().iter().map(|e| e.weight).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
        assert!((list.total_weight() - 2.1).abs() < 1e-6);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        let sum: f64 = list.entries().iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cursor_walks_in_order() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        let first = list.next_posting().unwrap();
        let second = list.next_posting().unwrap();
        assert!(first.prob >= second.prob);
        assert_eq!(list.consumed(), 2);
        list.rewind();
        assert_eq!(list.consumed(), 0);
        assert_eq!(list.peek().unwrap(), first);
    }

    #[test]
    fn empty_pattern_list() {
        let store = store_with_weights();
        let ghost = crate::term::TermId::new(crate::TermKind::Resource, 999);
        let mut list = PostingList::build(&store, &SlotPattern::with_p(ghost));
        assert!(list.is_empty());
        assert_eq!(list.peek_prob(), None);
        assert_eq!(list.next_posting(), None);
        assert_eq!(list.total_weight(), 0.0);
    }

    #[test]
    fn unbound_pattern_serves_global_list() {
        let store = store_with_weights();
        let list = PostingList::build(&store, &SlotPattern::any());
        assert_eq!(list.len(), store.len());
        assert_eq!(list.serve_kind(), ServeKind::Unbound);
        let probs: Vec<f64> = list.entries().iter().map(|e| e.prob).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bound_subject_serves_anchored_stratum() {
        let store = store_with_weights();
        let s = store.resource("person0").unwrap();
        let list = PostingList::build(&store, &SlotPattern::new(Some(s), None, None));
        assert_eq!(list.len(), 1);
        assert_eq!(list.serve_kind(), ServeKind::Subject);
        assert!((list.entries()[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_object_serves_anchored_stratum() {
        let store = store_with_weights();
        let o = store.resource("Princeton").unwrap();
        let list = PostingList::build(&store, &SlotPattern::new(None, None, Some(o)));
        assert_eq!(list.len(), 3);
        assert_eq!(list.serve_kind(), ServeKind::Object);
        let probs: Vec<f64> = list.entries().iter().map(|e| e.prob).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composite_shapes_filter_without_sorting() {
        let store = store_with_weights();
        let s = store.resource("person1").unwrap();
        let p = store.resource("lecturedAt").unwrap();
        let o = store.resource("Princeton").unwrap();
        for pattern in [
            SlotPattern::with_sp(s, p),
            SlotPattern::with_po(p, o),
            SlotPattern::new(Some(s), None, Some(o)),
            SlotPattern::new(Some(s), Some(p), Some(o)),
        ] {
            let list = PostingList::build(&store, &pattern);
            assert_eq!(list.serve_kind(), ServeKind::Filtered, "{pattern}");
            let reference = PostingList::build_by_scan(&store, &pattern);
            assert_eq!(list.entries(), reference.entries(), "{pattern}");
        }
    }

    #[test]
    fn every_shape_matches_scan_reference() {
        let store = store_with_weights();
        let s = store.resource("person2").unwrap();
        let p = store.resource("lecturedAt").unwrap();
        let o = store.resource("Princeton").unwrap();
        for mask in 0u8..8 {
            let pattern = SlotPattern::new(
                (mask & 1 != 0).then_some(s),
                (mask & 2 != 0).then_some(p),
                (mask & 4 != 0).then_some(o),
            );
            let list = PostingList::build(&store, &pattern);
            let reference = PostingList::build_by_scan(&store, &pattern);
            assert_eq!(list.entries(), reference.entries(), "shape {mask:#05b}");
        }
    }

    #[test]
    fn selective_composite_shapes_use_the_exact_range() {
        // Hub-shaped store: the subject, predicate, and object groups of
        // the probe pattern are all large, but the pattern itself
        // matches one triple. The serve must come from the permutation
        // range (O(matches)), not a group walk, and still match the
        // scan reference bit for bit.
        let mut b = XkgBuilder::new();
        let hub_s = b.dict_mut().resource("hubS");
        let hub_p = b.dict_mut().resource("hubP");
        let hub_o = b.dict_mut().resource("hubO");
        let src = b.intern_source("doc");
        for i in 0..40u32 {
            let x = b.dict_mut().resource(&format!("x{i}"));
            let y = b.dict_mut().resource(&format!("y{i}"));
            b.add_extracted(hub_s, hub_p, y, 0.5, src); // fans out the s and p groups
            b.add_extracted(x, hub_p, hub_o, 0.6, src); // fans out the p and o groups
        }
        b.add_extracted(hub_s, hub_p, hub_o, 0.9, src); // the 1 real match
        let store = b.build();
        let ground = SlotPattern::new(Some(hub_s), Some(hub_p), Some(hub_o));
        let list = PostingList::build(&store, &ground);
        assert_eq!(list.serve_kind(), ServeKind::Range);
        assert_eq!(list.len(), 1);
        let reference = PostingList::build_by_scan(&store, &ground);
        assert_eq!(list.entries(), reference.entries());
        // A no-match composite shape short-circuits on the empty range
        // without touching any group.
        let ghost = SlotPattern::new(Some(hub_o), Some(hub_p), Some(hub_s));
        let empty = PostingList::build(&store, &ghost);
        assert!(empty.is_empty());
        assert_eq!(empty.total_weight(), 0.0);
    }

    #[test]
    fn zero_mass_group_serves_empty_list() {
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("ghostly");
        let q = b.dict_mut().resource("solid");
        let o = b.dict_mut().resource("obj");
        let src = b.intern_source("doc");
        for i in 0..3u32 {
            let s = b.dict_mut().resource(&format!("z{i}"));
            b.add_extracted(s, p, o, 0.0, src);
        }
        let s = b.dict_mut().resource("z0");
        b.add_extracted(s, q, o, 0.8, src);
        let store = b.build();

        // The zero-confidence predicate group has entries but no mass:
        // it serves as the canonical empty list, and its head bound is 0.
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        assert!(list.is_empty());
        assert_eq!(list.total_weight(), 0.0);
        assert_eq!(store.head_prob(&SlotPattern::with_p(p)), Some(0.0));
        // The scan reference agrees.
        let reference = PostingList::build_by_scan(&store, &SlotPattern::with_p(p));
        assert!(reference.is_empty());
        // A subject whose triples are all massless serves empty too,
        // while its mixed sibling keeps only implicit zero-prob entries.
        let z1 = store.resource("z1").unwrap();
        let sub = PostingList::build(&store, &SlotPattern::new(Some(z1), None, None));
        assert!(sub.is_empty());
        let z0 = store.resource("z0").unwrap();
        let mixed = PostingList::build(&store, &SlotPattern::new(Some(z0), None, None));
        assert_eq!(mixed.len(), 2);
        assert!((mixed.entries()[0].prob - 1.0).abs() < 1e-12);
        assert_eq!(mixed.entries()[1].prob, 0.0);
    }

    #[test]
    fn prefix_weights_match_direct_sums() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        for upto in 0..=list.len() {
            let direct: f64 = list.entries()[..upto].iter().map(|e| e.weight).sum();
            assert!((list.prefix_weight(upto) - direct).abs() < 1e-9, "upto {upto}");
        }
        list.next_posting();
        let rest: f64 = list.entries()[1..].iter().map(|e| e.weight).sum();
        assert!((list.remaining_weight() - rest).abs() < 1e-9);
    }

    #[test]
    fn anchored_prefix_weights_match_direct_sums() {
        let store = store_with_weights();
        let o = store.resource("Princeton").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::new(None, None, Some(o)));
        assert_eq!(list.serve_kind(), ServeKind::Object);
        for upto in 0..=list.len() {
            let direct: f64 = list.entries()[..upto].iter().map(|e| e.weight).sum();
            assert!((list.prefix_weight(upto) - direct).abs() < 1e-9, "upto {upto}");
        }
        list.next_posting();
        let rest: f64 = list.entries()[1..].iter().map(|e| e.weight).sum();
        assert!((list.remaining_weight() - rest).abs() < 1e-9);
    }

    #[test]
    fn posting_index_groups_cover_every_predicate() {
        let store = store_with_weights();
        let idx = store.posting_index();
        let mut covered = 0;
        for &p in idx.predicates() {
            let group = store.predicate_group(p);
            assert!(!group.is_empty());
            assert!(group.entries().windows(2).all(|w| {
                w[0].weight > w[1].weight
                    || (w[0].weight == w[1].weight && w[0].triple < w[1].triple)
            }));
            covered += group.len();
        }
        assert_eq!(covered, store.len());
    }

    #[test]
    fn quantize_weight_is_monotone_and_bounded() {
        assert_eq!(quantize_weight(0.0), 0);
        assert_eq!(quantize_weight(-1.0), 0);
        assert_eq!(quantize_weight(f64::NAN), 0);
        let pool: Vec<f64> = vec![
            1e-40, 1e-12, 1e-6, 0.01, 0.5, 0.50001, 1.0, 2.0, 1e3, 1e6, 4.2e9,
        ];
        let codes: Vec<u16> = pool.iter().map(|&w| quantize_weight(w)).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]), "{codes:?}");
        assert!(codes[0] >= 1);
        assert!(*codes.last().unwrap() < u16::MAX, "headroom at the top of the code range");
        // Equal weights share a code.
        assert_eq!(quantize_weight(0.7), quantize_weight(0.7));
    }

    /// Every serve of a Packed store is entry-for-entry bit-identical
    /// to the Flat store over the same builder, for all 8 shapes.
    #[test]
    fn packed_serves_bit_identical_to_flat() {
        let mut b = XkgBuilder::new();
        let src = b.intern_source("doc");
        for i in 0..300u32 {
            let s = b.dict_mut().resource(&format!("s{}", i % 37));
            let p = b.dict_mut().resource(&format!("p{}", i % 5));
            let o = b.dict_mut().resource(&format!("o{}", i % 23));
            let conf = 0.05 + ((i * 13) % 90) as f32 / 100.0;
            b.add_extracted(s, p, o, conf, src);
        }
        let flat = b.clone().build();
        let packed = b.build_with(SegmentLayout::Packed);
        let s = flat.resource("s1").unwrap();
        let p = flat.resource("p2").unwrap();
        let o = flat.resource("o3").unwrap();
        for mask in 0u8..8 {
            let pattern = SlotPattern::new(
                (mask & 1 != 0).then_some(s),
                (mask & 2 != 0).then_some(p),
                (mask & 4 != 0).then_some(o),
            );
            let fl = PostingList::build(&flat, &pattern);
            let pk = PostingList::build(&packed, &pattern);
            assert_eq!(fl.entries(), pk.entries(), "shape {mask:#05b}");
            assert_eq!(
                fl.total_weight().to_bits(),
                pk.total_weight().to_bits(),
                "total, shape {mask:#05b}"
            );
            for upto in [0, 1, fl.len() / 2, fl.len()] {
                assert_eq!(
                    fl.prefix_weight(upto).to_bits(),
                    pk.prefix_weight(upto).to_bits(),
                    "prefix {upto}, shape {mask:#05b}"
                );
            }
            assert_eq!(flat.head_prob(&pattern), packed.head_prob(&pattern));
            assert_eq!(flat.head_weight(&pattern), packed.head_weight(&pattern));
        }
    }
}
