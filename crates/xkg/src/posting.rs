//! Score-sorted posting lists for triple patterns.
//!
//! The paper's top-k processor (§4) requires *sorted access* to the matches
//! of each triple pattern: "top-k query processing is based on the ability
//! to access answers for a triple pattern in sorted order of their scores".
//!
//! # Precomputed posting index
//!
//! The store freezes a [`PostingIndex`] at build time — the paper's
//! "triple pattern index lists" made literal:
//!
//! * **Per predicate**: every triple, grouped by predicate, each group
//!   ordered by descending emission weight (`support × confidence`) with
//!   ties broken by triple id, probabilities pre-normalized over the
//!   group, and prefix-summed weights for O(1) weight-of-prefix queries.
//! * **Per subject / per object (anchored strata)**: the same layout
//!   grouped by subject and by object, serving the anchored pattern
//!   shapes relationship queries hammer. The groups appear in ascending
//!   anchor-term order — exactly the primary-key order of the SPO
//!   (subject) and OSP (object) permutation columns in
//!   [`crate::index::TripleIndex`] — so the strata store **no group
//!   map** of their own: a group's span is recovered from the
//!   permutation's binary-searched range (the storage sharing that keeps
//!   the anchored strata at 32 bytes/triple each instead of duplicating
//!   the predicate stratum's group directory).
//! * **Unbound-predicate stratum**: one global list of all triples in the
//!   same order, normalized over the whole store, serving patterns that
//!   bind no slot at all.
//!
//! [`PostingList::build`] therefore answers **every** pattern shape
//! without sorting: predicate-only, fully unbound, subject-only, and
//! object-only patterns are **borrowed slices** (`O(1)` probe, zero
//! allocations); the remaining shapes (sp / op / so / ground) filter the
//! smallest covering group — already score-sorted, so the single
//! allocated pass preserves order. The pre-index materialize-and-sort
//! path survives only as [`PostingList::build_by_scan`], the reference
//! implementation property tests and benchmarks compare against.
//!
//! # Float edges
//!
//! Weights are validated at ingestion ([`crate::store::XkgBuilder`]
//! rejects or sanitizes non-finite confidences), and every comparison in
//! here uses `f64::total_cmp` — a NaN that slipped through cannot panic
//! the build. Groups whose total emission weight is zero serve **empty**
//! lists: a zero-mass match set emits nothing in any engine, so the
//! rank-join head bound of 0 the precomputed index reports for such
//! groups is exact rather than a trap for the tightened threshold.

use std::collections::HashMap;
use std::ops::Range;

use crate::pattern::SlotPattern;
use crate::store::XkgStore;
use crate::term::TermId;
use crate::triple::{Provenance, Triple, TripleId};

/// A single scored entry of a posting list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The matching triple.
    pub triple: TripleId,
    /// Raw emission weight (`support × confidence`).
    pub weight: f64,
    /// Normalized emission probability `weight / total_weight` of the
    /// pattern. In `(0, 1]`; all probabilities of a list sum to 1 (unless
    /// the list is empty).
    pub prob: f64,
}

/// One predicate's contiguous range in the posting index.
#[derive(Debug, Clone, Copy)]
struct Group {
    start: u32,
    end: u32,
    total_weight: f64,
}

/// How [`PostingList::build`] served a pattern — the observability hook
/// behind the query layer's `ExecMetrics` anchored-serve counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// Borrowed from the per-predicate stratum (zero allocation).
    Predicate,
    /// Borrowed from the global unbound stratum (zero allocation).
    Unbound,
    /// Borrowed from the subject-anchored stratum (zero allocation).
    Subject,
    /// Borrowed from the object-anchored stratum (zero allocation).
    Object,
    /// The smallest covering index group filtered by the remaining bound
    /// slots: one allocation, zero sorts (the group is already ordered).
    Filtered,
    /// A highly selective composite shape: the permutation index's exact
    /// match range, materialized and weight-ordered. Chosen when that
    /// range is far smaller than every covering group (e.g. a ground
    /// pattern over three hub terms), where ordering O(matches) entries
    /// beats walking a group that may be arbitrarily larger.
    Range,
    /// Materialized from the permutation range and sorted — the pre-index
    /// reference path ([`PostingList::build_by_scan`]); never produced by
    /// [`PostingList::build`].
    Scanned,
    /// Wrapped externally materialized entries (cache shares and the
    /// query layer's filtered views).
    External,
}

impl ServeKind {
    /// True for lists served from the anchored (subject/object) strata,
    /// including the filtered composite shapes.
    pub fn is_anchored(self) -> bool {
        matches!(
            self,
            ServeKind::Subject | ServeKind::Object | ServeKind::Filtered
        )
    }

    /// True for zero-allocation borrowed slices of the precomputed index.
    pub fn is_borrowed(self) -> bool {
        matches!(
            self,
            ServeKind::Predicate | ServeKind::Unbound | ServeKind::Subject | ServeKind::Object
        )
    }
}

/// One grouped stratum under construction: entries in (key, weight desc,
/// id asc) order with globally cumulative prefix sums, plus the group
/// directory when the caller needs one.
struct Stratum {
    entries: Vec<Posting>,
    prefix: Vec<f64>,
    groups: HashMap<TermId, Group>,
    keys: Vec<TermId>,
}

/// Sorts all triples by `(key, weight desc, id asc)` and normalizes each
/// key's run over its own total. Group totals are accumulated in sorted
/// order, so a probability here is bit-identical to what the reference
/// scan path computes for the same match set.
fn grouped_stratum(
    weights: &[f64],
    key_of: impl Fn(usize) -> TermId,
    with_groups: bool,
) -> Stratum {
    let n = weights.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        key_of(a as usize)
            .cmp(&key_of(b as usize))
            .then_with(|| weights[b as usize].total_cmp(&weights[a as usize]))
            .then_with(|| a.cmp(&b))
    });

    let mut entries: Vec<Posting> = Vec::with_capacity(n);
    let mut prefix: Vec<f64> = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut groups: HashMap<TermId, Group> = HashMap::new();
    let mut keys: Vec<TermId> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let key = key_of(order[i] as usize);
        let mut j = i;
        let mut total = 0.0f64;
        while j < n && key_of(order[j] as usize) == key {
            total += weights[order[j] as usize];
            j += 1;
        }
        for &id in &order[i..j] {
            let weight = weights[id as usize];
            entries.push(Posting {
                triple: TripleId(id),
                weight,
                prob: if total > 0.0 { weight / total } else { 0.0 },
            });
            prefix.push(prefix.last().unwrap() + weight);
        }
        if with_groups {
            groups.insert(
                key,
                Group {
                    start: i as u32,
                    end: j as u32,
                    total_weight: total,
                },
            );
            keys.push(key);
        }
        i = j;
    }
    keys.sort_unstable();
    Stratum {
        entries,
        prefix,
        groups,
        keys,
    }
}

/// The global `(weight desc, id asc)` stratum, normalized over the store.
fn global_stratum(weights: &[f64]) -> (Vec<Posting>, Vec<f64>, f64) {
    let n = weights.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then_with(|| a.cmp(&b))
    });
    let total: f64 = weights.iter().sum();
    let mut entries: Vec<Posting> = Vec::with_capacity(n);
    let mut prefix: Vec<f64> = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &id in &order {
        let weight = weights[id as usize];
        entries.push(Posting {
            triple: TripleId(id),
            weight,
            prob: if total > 0.0 { weight / total } else { 0.0 },
        });
        prefix.push(prefix.last().unwrap() + weight);
    }
    (entries, prefix, total)
}

/// Below this table size the four strata build sequentially; above it,
/// each sorts on its own scoped thread (they are independent).
const PARALLEL_STRATA_THRESHOLD: usize = 4096;

/// Build-time score-sorted posting index over a frozen triple table.
///
/// Memory: 32 bytes/triple each (24-byte entry + 8-byte prefix sum) for
/// the predicate, subject, object, and global strata — 128 bytes/triple
/// total. The anchored (subject/object) strata carry **no group
/// directory**: their group order is the primary-key order of the SPO /
/// OSP permutation columns, so a group's span is the permutation's
/// binary-searched range, shared rather than duplicated.
#[derive(Debug, Default)]
pub struct PostingIndex {
    /// All triples sorted by (predicate, weight desc, id asc).
    by_pred: Vec<Posting>,
    /// Prefix sums over `by_pred` weights (`len + 1` entries).
    by_pred_prefix: Vec<f64>,
    /// Predicate → its contiguous group.
    groups: HashMap<TermId, Group>,
    /// Predicates in ascending term-id order (deterministic iteration).
    predicates: Vec<TermId>,
    /// All triples sorted by (subject, weight desc, id asc). Group spans
    /// are shared with the SPO permutation column.
    by_subj: Vec<Posting>,
    /// Prefix sums over `by_subj` weights (`len + 1` entries).
    by_subj_prefix: Vec<f64>,
    /// All triples sorted by (object, weight desc, id asc). Group spans
    /// are shared with the OSP permutation column.
    by_obj: Vec<Posting>,
    /// Prefix sums over `by_obj` weights (`len + 1` entries).
    by_obj_prefix: Vec<f64>,
    /// All triples sorted by (weight desc, id asc), normalized globally.
    all: Vec<Posting>,
    /// Prefix sums over `all` weights (`len + 1` entries).
    all_prefix: Vec<f64>,
    /// Total emission weight of the whole store.
    all_total: f64,
}

impl PostingIndex {
    /// Builds the four strata. `prov[i]` and `triples[i]` belong to the
    /// triple with id `i`. Weights are assumed finite (enforced at
    /// ingestion by `XkgBuilder`); ordering uses `total_cmp`, so even a
    /// hostile weight cannot panic here.
    pub(crate) fn build(triples: &[Triple], prov: &[Provenance]) -> PostingIndex {
        let n = prov.len();
        let weights: Vec<f64> = prov.iter().map(Provenance::weight).collect();
        debug_assert!(
            weights.iter().all(|w| w.is_finite()),
            "weights are validated at ingestion"
        );

        let weights = &weights;
        let build_pred = || grouped_stratum(weights, |i| triples[i].p, true);
        let build_subj = || grouped_stratum(weights, |i| triples[i].s, false);
        let build_obj = || grouped_stratum(weights, |i| triples[i].o, false);
        let build_all = || global_stratum(weights);

        let (pred, subj, obj, (all, all_prefix, all_total)) = if n < PARALLEL_STRATA_THRESHOLD {
            (build_pred(), build_subj(), build_obj(), build_all())
        } else {
            std::thread::scope(|scope| {
                let hs = scope.spawn(build_subj);
                let ho = scope.spawn(build_obj);
                let ha = scope.spawn(build_all);
                (
                    build_pred(),
                    hs.join().expect("subject stratum thread panicked"),
                    ho.join().expect("object stratum thread panicked"),
                    ha.join().expect("global stratum thread panicked"),
                )
            })
        };

        PostingIndex {
            by_pred: pred.entries,
            by_pred_prefix: pred.prefix,
            groups: pred.groups,
            predicates: pred.keys,
            by_subj: subj.entries,
            by_subj_prefix: subj.prefix,
            by_obj: obj.entries,
            by_obj_prefix: obj.prefix,
            all,
            all_prefix,
            all_total,
        }
    }

    /// The predicates present in the store, ascending by term id.
    pub fn predicates(&self) -> &[TermId] {
        &self.predicates
    }

    /// One predicate's score-sorted postings (empty if absent).
    pub fn predicate_postings(&self, p: TermId) -> &[Posting] {
        match self.groups.get(&p) {
            Some(g) => &self.by_pred[g.start as usize..g.end as usize],
            None => &[],
        }
    }

    /// Emission probability of the best-scored match under predicate `p`
    /// (the head of its score-sorted group), or 0.0 for an absent or
    /// zero-weight predicate. O(1): one hash probe into the precomputed
    /// index, no materialization.
    pub fn predicate_head_prob(&self, p: TermId) -> f64 {
        self.predicate_postings(p).first().map_or(0.0, |e| e.prob)
    }

    /// Emission probability of the globally best-scored triple (head of
    /// the unbound-predicate stratum), or 0.0 for an empty store. O(1).
    pub fn global_head_prob(&self) -> f64 {
        self.all.first().map_or(0.0, |e| e.prob)
    }

    /// Total emission weight under one predicate.
    pub fn predicate_total_weight(&self, p: TermId) -> f64 {
        self.groups.get(&p).map_or(0.0, |g| g.total_weight)
    }

    /// All postings, score-sorted, normalized over the whole store.
    pub fn all_postings(&self) -> &[Posting] {
        &self.all
    }

    /// Total emission weight of the store.
    pub fn total_weight(&self) -> f64 {
        self.all_total
    }

    /// Prefix-sum slice aligned with `predicate_postings(p)` (one entry
    /// longer than the group).
    fn predicate_prefix(&self, p: TermId) -> Option<&[f64]> {
        self.groups
            .get(&p)
            .map(|g| &self.by_pred_prefix[g.start as usize..=g.end as usize])
    }

    /// The subject stratum's entries and prefix sums over `span` — the
    /// SPO permutation's range for that subject (the two share key
    /// order, which is why no subject group map exists).
    pub(crate) fn subject_slice(&self, span: Range<usize>) -> (&[Posting], &[f64]) {
        (
            &self.by_subj[span.clone()],
            &self.by_subj_prefix[span.start..=span.end],
        )
    }

    /// The object stratum's entries and prefix sums over `span` — the
    /// OSP permutation's range for that object.
    pub(crate) fn object_slice(&self, span: Range<usize>) -> (&[Posting], &[f64]) {
        (
            &self.by_obj[span.clone()],
            &self.by_obj_prefix[span.start..=span.end],
        )
    }
}

/// Where a posting list's entries live.
#[derive(Debug, Clone)]
enum Entries<'s> {
    /// Borrowed straight from the store's [`PostingIndex`] (hot path:
    /// zero allocations, zero sorting).
    Borrowed(&'s [Posting]),
    /// Materialized for pattern shapes outside the precomputed index.
    Owned(Vec<Posting>),
    /// Shared with a caller-managed cache (see the query layer's
    /// posting-cache hierarchy); each list keeps its own cursor.
    /// `Arc` so cross-query caches can live behind `Sync` facades.
    Shared(std::sync::Arc<[Posting]>),
}

impl Entries<'_> {
    #[inline]
    fn as_slice(&self) -> &[Posting] {
        match self {
            Entries::Borrowed(s) => s,
            Entries::Owned(v) => v,
            Entries::Shared(rc) => rc,
        }
    }
}

/// The matches of a triple pattern in descending score order, with a cursor
/// for incremental sorted access.
///
/// Borrows from the store's precomputed [`PostingIndex`] when the pattern
/// shape allows (predicate-only, unbound, subject-only, and object-only
/// patterns); composite anchored shapes own a single filtered —
/// never sorted — list.
#[derive(Debug, Clone)]
pub struct PostingList<'s> {
    entries: Entries<'s>,
    /// Prefix-summed weights aligned with `entries` (one entry longer),
    /// when served from the precomputed index.
    prefix: Option<&'s [f64]>,
    total_weight: f64,
    /// Weight consumed by the cursor so far, maintained incrementally so
    /// [`PostingList::remaining_weight`] is O(1) even for materialized
    /// lists without a prefix column.
    consumed_weight: f64,
    cursor: usize,
    kind: ServeKind,
}

impl<'s> PostingList<'s> {
    /// A borrowed index slice, or the canonical empty list when the
    /// slice's emission mass is zero (a zero-mass match set emits
    /// nothing — its entries all carry probability 0).
    fn borrowed(
        entries: &'s [Posting],
        prefix: Option<&'s [f64]>,
        total_weight: f64,
        kind: ServeKind,
    ) -> PostingList<'s> {
        if total_weight <= 0.0 {
            return PostingList {
                entries: Entries::Borrowed(&[]),
                prefix: None,
                total_weight: 0.0,
                consumed_weight: 0.0,
                cursor: 0,
                kind,
            };
        }
        PostingList {
            entries: Entries::Borrowed(entries),
            prefix,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind,
        }
    }

    /// An owned list from already-ordered entries (empty when massless).
    fn owned(entries: Vec<Posting>, total_weight: f64, kind: ServeKind) -> PostingList<'static> {
        if total_weight <= 0.0 {
            return PostingList {
                entries: Entries::Owned(Vec::new()),
                prefix: None,
                total_weight: 0.0,
                consumed_weight: 0.0,
                cursor: 0,
                kind,
            };
        }
        PostingList {
            entries: Entries::Owned(entries),
            prefix: None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind,
        }
    }

    /// Builds the posting list for `pattern` over `store`.
    ///
    /// Ties in weight are broken by triple id so iteration order is
    /// deterministic. Predicate-only, unbound, subject-only, and
    /// object-only patterns are served as borrowed slices of the store's
    /// posting index without allocating; every other shape filters the
    /// smallest covering group — one allocation, zero sorts.
    pub fn build(store: &'s XkgStore, pattern: &SlotPattern) -> PostingList<'s> {
        let index = store.posting_index();
        match (pattern.s, pattern.p, pattern.o) {
            (None, Some(p), None) => PostingList::borrowed(
                index.predicate_postings(p),
                index.predicate_prefix(p),
                index.predicate_total_weight(p),
                ServeKind::Predicate,
            ),
            (None, None, None) => PostingList::borrowed(
                index.all_postings(),
                Some(&index.all_prefix),
                index.total_weight(),
                ServeKind::Unbound,
            ),
            (Some(s), None, None) => {
                let (entries, prefix) = store.subject_group(s);
                let total = prefix.last().unwrap_or(&0.0) - prefix.first().unwrap_or(&0.0);
                PostingList::borrowed(entries, Some(prefix), total, ServeKind::Subject)
            }
            (None, None, Some(o)) => {
                let (entries, prefix) = store.object_group(o);
                let total = prefix.last().unwrap_or(&0.0) - prefix.first().unwrap_or(&0.0);
                PostingList::borrowed(entries, Some(prefix), total, ServeKind::Object)
            }
            _ => PostingList::filtered(store, pattern),
        }
    }

    /// Serves a composite shape (sp / op / so / ground) from the index.
    /// The default path filters the smallest covering group — already in
    /// (weight desc, id asc) order, so no sort; probabilities
    /// renormalize over the filtered total, summed in entry order
    /// (bit-identical to the scan reference). When the permutation
    /// index's *exact* match range is far smaller than every covering
    /// group (a ground pattern over hub terms can match 1 triple while
    /// each group holds millions), the range itself is materialized and
    /// weight-ordered instead — O(matches · log matches) beats an
    /// unbounded group walk.
    fn filtered(store: &'s XkgStore, pattern: &SlotPattern) -> PostingList<'s> {
        let matches = store.lookup(pattern);
        if matches.is_empty() {
            return PostingList::owned(Vec::new(), 0.0, ServeKind::Filtered);
        }
        let mut group: Option<&[Posting]> = None;
        let mut consider = |candidate: &'s [Posting]| {
            if group.is_none_or(|g| candidate.len() < g.len()) {
                group = Some(candidate);
            }
        };
        if let Some(s) = pattern.s {
            consider(store.subject_group(s).0);
        }
        if let Some(o) = pattern.o {
            consider(store.object_group(o).0);
        }
        if let Some(p) = pattern.p {
            consider(store.posting_index().predicate_postings(p));
        }
        let group = group.expect("filtered shapes bind at least one slot");
        if matches.len() * 4 <= group.len() {
            return PostingList::from_match_ids(store, matches, ServeKind::Range);
        }
        let mut entries: Vec<Posting> = group
            .iter()
            .filter(|e| pattern.matches(store.triple(e.triple)))
            .copied()
            .collect();
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        for e in &mut entries {
            e.prob = if total > 0.0 { e.weight / total } else { 0.0 };
        }
        PostingList::owned(entries, total, ServeKind::Filtered)
    }

    /// Materializes an exact match-id set and orders it by
    /// (weight desc, id asc), totalling in sorted order — bit-identical
    /// to the index strata's per-group accumulation.
    fn from_match_ids(
        store: &XkgStore,
        ids: &[TripleId],
        kind: ServeKind,
    ) -> PostingList<'static> {
        let mut raw: Vec<(TripleId, f64)> = ids
            .iter()
            .map(|&id| (id, store.provenance(id).weight()))
            .collect();
        raw.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total: f64 = raw.iter().map(|(_, w)| w).sum();
        let entries = raw
            .into_iter()
            .map(|(triple, weight)| Posting {
                triple,
                weight,
                prob: if total > 0.0 { weight / total } else { 0.0 },
            })
            .collect();
        PostingList::owned(entries, total, kind)
    }

    /// The pre-index reference implementation: materializes the
    /// permutation range and sorts it by (weight desc, id asc). Kept for
    /// property tests (every [`PostingList::build`] result must be
    /// entry-for-entry equal) and as the "before" side of the anchored
    /// benchmark; the engines never call it.
    pub fn build_by_scan(store: &XkgStore, pattern: &SlotPattern) -> PostingList<'static> {
        PostingList::from_match_ids(store, store.lookup(pattern), ServeKind::Scanned)
    }

    /// Wraps an externally materialized, already score-sorted entry list.
    /// Used by the query layer's filtered views over this machinery.
    pub fn from_owned(entries: Vec<Posting>, total_weight: f64) -> PostingList<'static> {
        PostingList {
            entries: Entries::Owned(entries),
            prefix: None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind: ServeKind::External,
        }
    }

    /// Wraps a cache-shared, already score-sorted entry list. The list
    /// gets its own cursor; the entries are not copied.
    pub fn from_shared(entries: std::sync::Arc<[Posting]>, total_weight: f64) -> PostingList<'static> {
        PostingList {
            entries: Entries::Shared(entries),
            prefix: None,
            total_weight,
            consumed_weight: 0.0,
            cursor: 0,
            kind: ServeKind::External,
        }
    }

    /// Consumes the list into an owned entry vector (no copy when the
    /// entries were already materialized).
    pub fn into_entries(self) -> Vec<Posting> {
        match self.entries {
            Entries::Owned(v) => v,
            Entries::Borrowed(s) => s.to_vec(),
            Entries::Shared(rc) => rc.to_vec(),
        }
    }

    /// How this list was served (see [`ServeKind`]).
    #[inline]
    pub fn serve_kind(&self) -> ServeKind {
        self.kind
    }

    /// Total emission weight of all matches (the idf-like normalizer).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of matches.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.as_slice().len()
    }

    /// True if the pattern has no matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.as_slice().is_empty()
    }

    /// Entries in descending score order (ignores the cursor).
    #[inline]
    pub fn entries(&self) -> &[Posting] {
        self.entries.as_slice()
    }

    /// The next unconsumed posting, without advancing.
    #[inline]
    pub fn peek(&self) -> Option<Posting> {
        self.entries.as_slice().get(self.cursor).copied()
    }

    /// The emission probability of the next unconsumed posting (an upper
    /// bound on everything still in the list), or `None` if exhausted.
    #[inline]
    pub fn peek_prob(&self) -> Option<f64> {
        self.peek().map(|p| p.prob)
    }

    /// Consumes and returns the next posting in descending score order.
    #[inline]
    pub fn next_posting(&mut self) -> Option<Posting> {
        let p = self.peek()?;
        self.cursor += 1;
        self.consumed_weight += p.weight;
        Some(p)
    }

    /// Number of postings consumed so far (depth of sorted access).
    #[inline]
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Combined weight of the first `upto` entries. O(1) when served from
    /// the precomputed index (prefix sums), O(upto) otherwise.
    pub fn prefix_weight(&self, upto: usize) -> f64 {
        let upto = upto.min(self.len());
        match self.prefix {
            Some(pre) => pre[upto] - pre[0],
            None => self.entries.as_slice()[..upto]
                .iter()
                .map(|e| e.weight)
                .sum(),
        }
    }

    /// Emission weight not yet consumed by the cursor. O(1) for every
    /// list: index-served lists read the build-time prefix-sum columns,
    /// materialized lists use the consumed weight tracked by
    /// [`PostingList::next_posting`]. (The rank-join threshold asks for
    /// this every capping round.)
    #[inline]
    pub fn remaining_weight(&self) -> f64 {
        match self.prefix {
            Some(pre) => (self.total_weight - (pre[self.cursor] - pre[0])).max(0.0),
            None => (self.total_weight - self.consumed_weight).max(0.0),
        }
    }

    /// Resets the cursor to the start of the list.
    pub fn rewind(&mut self) {
        self.cursor = 0;
        self.consumed_weight = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{XkgBuilder, XkgStore};

    fn store_with_weights() -> XkgStore {
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("lecturedAt");
        let princeton = b.dict_mut().resource("Princeton");
        for (i, conf) in [(0u32, 0.9f32), (1, 0.5), (2, 0.7)] {
            let s = b.dict_mut().resource(&format!("person{i}"));
            let src = b.intern_source(&format!("doc{i}"));
            b.add_extracted(s, p, princeton, conf, src);
        }
        b.build()
    }

    #[test]
    fn postings_sorted_descending() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        assert_eq!(list.len(), 3);
        assert_eq!(list.serve_kind(), ServeKind::Predicate);
        let weights: Vec<f64> = list.entries().iter().map(|e| e.weight).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
        assert!((list.total_weight() - 2.1).abs() < 1e-6);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        let sum: f64 = list.entries().iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cursor_walks_in_order() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        let first = list.next_posting().unwrap();
        let second = list.next_posting().unwrap();
        assert!(first.prob >= second.prob);
        assert_eq!(list.consumed(), 2);
        list.rewind();
        assert_eq!(list.consumed(), 0);
        assert_eq!(list.peek().unwrap(), first);
    }

    #[test]
    fn empty_pattern_list() {
        let store = store_with_weights();
        let ghost = crate::term::TermId::new(crate::TermKind::Resource, 999);
        let mut list = PostingList::build(&store, &SlotPattern::with_p(ghost));
        assert!(list.is_empty());
        assert_eq!(list.peek_prob(), None);
        assert_eq!(list.next_posting(), None);
        assert_eq!(list.total_weight(), 0.0);
    }

    #[test]
    fn unbound_pattern_serves_global_list() {
        let store = store_with_weights();
        let list = PostingList::build(&store, &SlotPattern::any());
        assert_eq!(list.len(), store.len());
        assert_eq!(list.serve_kind(), ServeKind::Unbound);
        let probs: Vec<f64> = list.entries().iter().map(|e| e.prob).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bound_subject_serves_anchored_stratum() {
        let store = store_with_weights();
        let s = store.resource("person0").unwrap();
        let list = PostingList::build(&store, &SlotPattern::new(Some(s), None, None));
        assert_eq!(list.len(), 1);
        assert_eq!(list.serve_kind(), ServeKind::Subject);
        assert!((list.entries()[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_object_serves_anchored_stratum() {
        let store = store_with_weights();
        let o = store.resource("Princeton").unwrap();
        let list = PostingList::build(&store, &SlotPattern::new(None, None, Some(o)));
        assert_eq!(list.len(), 3);
        assert_eq!(list.serve_kind(), ServeKind::Object);
        let probs: Vec<f64> = list.entries().iter().map(|e| e.prob).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composite_shapes_filter_without_sorting() {
        let store = store_with_weights();
        let s = store.resource("person1").unwrap();
        let p = store.resource("lecturedAt").unwrap();
        let o = store.resource("Princeton").unwrap();
        for pattern in [
            SlotPattern::with_sp(s, p),
            SlotPattern::with_po(p, o),
            SlotPattern::new(Some(s), None, Some(o)),
            SlotPattern::new(Some(s), Some(p), Some(o)),
        ] {
            let list = PostingList::build(&store, &pattern);
            assert_eq!(list.serve_kind(), ServeKind::Filtered, "{pattern}");
            let reference = PostingList::build_by_scan(&store, &pattern);
            assert_eq!(list.entries(), reference.entries(), "{pattern}");
        }
    }

    #[test]
    fn every_shape_matches_scan_reference() {
        let store = store_with_weights();
        let s = store.resource("person2").unwrap();
        let p = store.resource("lecturedAt").unwrap();
        let o = store.resource("Princeton").unwrap();
        for mask in 0u8..8 {
            let pattern = SlotPattern::new(
                (mask & 1 != 0).then_some(s),
                (mask & 2 != 0).then_some(p),
                (mask & 4 != 0).then_some(o),
            );
            let list = PostingList::build(&store, &pattern);
            let reference = PostingList::build_by_scan(&store, &pattern);
            assert_eq!(list.entries(), reference.entries(), "shape {mask:#05b}");
        }
    }

    #[test]
    fn selective_composite_shapes_use_the_exact_range() {
        // Hub-shaped store: the subject, predicate, and object groups of
        // the probe pattern are all large, but the pattern itself
        // matches one triple. The serve must come from the permutation
        // range (O(matches)), not a group walk, and still match the
        // scan reference bit for bit.
        let mut b = XkgBuilder::new();
        let hub_s = b.dict_mut().resource("hubS");
        let hub_p = b.dict_mut().resource("hubP");
        let hub_o = b.dict_mut().resource("hubO");
        let src = b.intern_source("doc");
        for i in 0..40u32 {
            let x = b.dict_mut().resource(&format!("x{i}"));
            let y = b.dict_mut().resource(&format!("y{i}"));
            b.add_extracted(hub_s, hub_p, y, 0.5, src); // fans out the s and p groups
            b.add_extracted(x, hub_p, hub_o, 0.6, src); // fans out the p and o groups
        }
        b.add_extracted(hub_s, hub_p, hub_o, 0.9, src); // the 1 real match
        let store = b.build();
        let ground = SlotPattern::new(Some(hub_s), Some(hub_p), Some(hub_o));
        let list = PostingList::build(&store, &ground);
        assert_eq!(list.serve_kind(), ServeKind::Range);
        assert_eq!(list.len(), 1);
        let reference = PostingList::build_by_scan(&store, &ground);
        assert_eq!(list.entries(), reference.entries());
        // A no-match composite shape short-circuits on the empty range
        // without touching any group.
        let ghost = SlotPattern::new(Some(hub_o), Some(hub_p), Some(hub_s));
        let empty = PostingList::build(&store, &ghost);
        assert!(empty.is_empty());
        assert_eq!(empty.total_weight(), 0.0);
    }

    #[test]
    fn zero_mass_group_serves_empty_list() {
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("ghostly");
        let q = b.dict_mut().resource("solid");
        let o = b.dict_mut().resource("obj");
        let src = b.intern_source("doc");
        for i in 0..3u32 {
            let s = b.dict_mut().resource(&format!("z{i}"));
            b.add_extracted(s, p, o, 0.0, src);
        }
        let s = b.dict_mut().resource("z0");
        b.add_extracted(s, q, o, 0.8, src);
        let store = b.build();

        // The zero-confidence predicate group has entries but no mass:
        // it serves as the canonical empty list, and its head bound is 0.
        let list = PostingList::build(&store, &SlotPattern::with_p(p));
        assert!(list.is_empty());
        assert_eq!(list.total_weight(), 0.0);
        assert_eq!(store.posting_index().predicate_head_prob(p), 0.0);
        // The scan reference agrees.
        let reference = PostingList::build_by_scan(&store, &SlotPattern::with_p(p));
        assert!(reference.is_empty());
        // A subject whose triples are all massless serves empty too,
        // while its mixed sibling keeps only implicit zero-prob entries.
        let z1 = store.resource("z1").unwrap();
        let sub = PostingList::build(&store, &SlotPattern::new(Some(z1), None, None));
        assert!(sub.is_empty());
        let z0 = store.resource("z0").unwrap();
        let mixed = PostingList::build(&store, &SlotPattern::new(Some(z0), None, None));
        assert_eq!(mixed.len(), 2);
        assert!((mixed.entries()[0].prob - 1.0).abs() < 1e-12);
        assert_eq!(mixed.entries()[1].prob, 0.0);
    }

    #[test]
    fn prefix_weights_match_direct_sums() {
        let store = store_with_weights();
        let p = store.dict().get(crate::TermKind::Resource, "lecturedAt").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::with_p(p));
        for upto in 0..=list.len() {
            let direct: f64 = list.entries()[..upto].iter().map(|e| e.weight).sum();
            assert!((list.prefix_weight(upto) - direct).abs() < 1e-9, "upto {upto}");
        }
        list.next_posting();
        let rest: f64 = list.entries()[1..].iter().map(|e| e.weight).sum();
        assert!((list.remaining_weight() - rest).abs() < 1e-9);
    }

    #[test]
    fn anchored_prefix_weights_match_direct_sums() {
        let store = store_with_weights();
        let o = store.resource("Princeton").unwrap();
        let mut list = PostingList::build(&store, &SlotPattern::new(None, None, Some(o)));
        assert_eq!(list.serve_kind(), ServeKind::Object);
        for upto in 0..=list.len() {
            let direct: f64 = list.entries()[..upto].iter().map(|e| e.weight).sum();
            assert!((list.prefix_weight(upto) - direct).abs() < 1e-9, "upto {upto}");
        }
        list.next_posting();
        let rest: f64 = list.entries()[1..].iter().map(|e| e.weight).sum();
        assert!((list.remaining_weight() - rest).abs() < 1e-9);
    }

    #[test]
    fn posting_index_groups_cover_every_predicate() {
        let store = store_with_weights();
        let idx = store.posting_index();
        let mut covered = 0;
        for &p in idx.predicates() {
            let group = idx.predicate_postings(p);
            assert!(!group.is_empty());
            assert!(group.windows(2).all(|w| {
                w[0].weight > w[1].weight
                    || (w[0].weight == w[1].weight && w[0].triple < w[1].triple)
            }));
            covered += group.len();
        }
        assert_eq!(covered, store.len());
    }
}
