//! Triples and their provenance.
//!
//! The XKG holds two strata of facts (paper §2):
//!
//! * **KG triples** — curated facts from the base knowledge graph (the
//!   paper uses Yago2s). High confidence, no textual source.
//! * **XKG triples** — token triples harvested by Open IE from text
//!   sources. Lower confidence, annotated with the documents they were
//!   extracted from and a support count (how often the extraction was
//!   observed).
//!
//! Triples are deduplicated on `(s, p, o)`; provenance of duplicates is
//! merged (support accumulates, confidence takes the maximum, sources are
//! unioned).

use std::fmt;

use crate::term::TermId;

/// A subject–predicate–object triple over interned terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject term.
    pub s: TermId,
    /// Predicate term.
    pub p: TermId,
    /// Object term.
    pub o: TermId,
}

impl Triple {
    /// Creates a triple.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Triple {
        Triple { s, p, o }
    }

    /// Returns the triple's terms in `(s, p, o)` order.
    #[inline]
    pub fn spo(self) -> [TermId; 3] {
        [self.s, self.p, self.o]
    }
}

/// Dense identifier of a stored (deduplicated) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TripleId(pub u32);

impl TripleId {
    /// The triple id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned provenance source (document / URL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

/// Which stratum of the extended knowledge graph a fact belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphTag {
    /// Curated base knowledge graph (e.g. Yago2s in the paper).
    Kg,
    /// Open IE extension triples (e.g. ClueWeb extractions in the paper).
    Xkg,
}

impl fmt::Display for GraphTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphTag::Kg => "KG",
            GraphTag::Xkg => "XKG",
        })
    }
}

/// Provenance metadata attached to a stored triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Stratum the fact belongs to. A fact asserted in both strata is
    /// recorded as [`GraphTag::Kg`] (the curated stratum dominates).
    pub graph: GraphTag,
    /// Extraction confidence in `[0, 1]`. Curated KG facts carry `1.0`.
    pub confidence: f32,
    /// Number of independent observations of this fact (an Open IE fact
    /// extracted from many sentences has high support). Curated facts have
    /// support 1 unless re-asserted.
    pub support: u32,
    /// Documents the fact was extracted from (empty for curated facts).
    pub sources: Vec<SourceId>,
}

impl Provenance {
    /// Provenance for a curated KG fact.
    pub fn kg() -> Provenance {
        Provenance {
            graph: GraphTag::Kg,
            confidence: 1.0,
            support: 1,
            sources: Vec::new(),
        }
    }

    /// Provenance for an Open IE extraction observed once in `source`.
    ///
    /// `confidence` is clamped to `[0, 1]`.
    pub fn extraction(confidence: f32, source: SourceId) -> Provenance {
        Provenance {
            graph: GraphTag::Xkg,
            confidence: confidence.clamp(0.0, 1.0),
            support: 1,
            sources: vec![source],
        }
    }

    /// Merges another observation of the same `(s, p, o)` fact into this
    /// provenance record.
    ///
    /// Support accumulates, confidence takes the maximum observed value,
    /// sources are unioned, and the stratum is promoted to KG if either
    /// observation is curated.
    pub fn absorb(&mut self, other: &Provenance) {
        self.support = self.support.saturating_add(other.support);
        if other.confidence > self.confidence {
            self.confidence = other.confidence;
        }
        if other.graph == GraphTag::Kg {
            self.graph = GraphTag::Kg;
        }
        for src in &other.sources {
            if !self.sources.contains(src) {
                self.sources.push(*src);
            }
        }
    }

    /// The emission weight of the fact used by posting lists: the tf-like
    /// component of the paper's scoring model (§4), `support × confidence`.
    #[inline]
    pub fn weight(&self) -> f64 {
        f64::from(self.support) * f64::from(self.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn kg_provenance_defaults() {
        let p = Provenance::kg();
        assert_eq!(p.graph, GraphTag::Kg);
        assert_eq!(p.confidence, 1.0);
        assert_eq!(p.support, 1);
        assert!(p.sources.is_empty());
        assert_eq!(p.weight(), 1.0);
    }

    #[test]
    fn extraction_confidence_is_clamped() {
        let p = Provenance::extraction(1.7, SourceId(0));
        assert_eq!(p.confidence, 1.0);
        let p = Provenance::extraction(-0.3, SourceId(0));
        assert_eq!(p.confidence, 0.0);
    }

    #[test]
    fn absorb_accumulates_support_and_sources() {
        let mut a = Provenance::extraction(0.6, SourceId(1));
        let b = Provenance::extraction(0.8, SourceId(2));
        a.absorb(&b);
        assert_eq!(a.support, 2);
        assert!((a.confidence - 0.8).abs() < 1e-6);
        assert_eq!(a.sources, vec![SourceId(1), SourceId(2)]);
        assert_eq!(a.graph, GraphTag::Xkg);
    }

    #[test]
    fn absorb_dedups_sources() {
        let mut a = Provenance::extraction(0.6, SourceId(1));
        let b = Provenance::extraction(0.5, SourceId(1));
        a.absorb(&b);
        assert_eq!(a.sources, vec![SourceId(1)]);
        assert_eq!(a.support, 2);
    }

    #[test]
    fn kg_stratum_dominates() {
        let mut a = Provenance::extraction(0.6, SourceId(1));
        a.absorb(&Provenance::kg());
        assert_eq!(a.graph, GraphTag::Kg);
        assert_eq!(a.confidence, 1.0);
    }

    #[test]
    fn weight_combines_support_and_confidence() {
        let mut p = Provenance::extraction(0.5, SourceId(0));
        p.support = 10;
        assert!((p.weight() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn triple_accessors() {
        let t = Triple::new(tid(1), tid(2), tid(3));
        assert_eq!(t.spo(), [tid(1), tid(2), tid(3)]);
        assert_eq!(TripleId(4).idx(), 4);
    }
}
