//! Term identifiers for the extended knowledge graph.
//!
//! An XKG (extended knowledge graph) contains three kinds of terms:
//!
//! * **Resources** — canonical KG entities, classes, and predicates
//!   (e.g. `AlbertEinstein`, `bornIn`).
//! * **Tokens** — textual phrases harvested by Open IE that occupy S, P, or O
//!   slots of extracted triples (e.g. `'won Nobel for'`).
//! * **Literals** — typed values such as dates, numbers, and plain strings
//!   (e.g. `'1879-03-14'`).
//!
//! A [`TermId`] packs the kind and a dense per-kind index into a single
//! `u32`, so triples are 12 bytes and fit comfortably in index vectors.

use std::fmt;

/// The kind of a term in the XKG.
///
/// The discriminant values are stable: they are packed into the top bits of
/// [`TermId`] and are relied upon by the permutation indexes for ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TermKind {
    /// A canonical KG resource (entity, class, or predicate).
    Resource = 0,
    /// A textual token produced by Open IE extraction.
    Token = 1,
    /// A literal value (string, number, date).
    Literal = 2,
}

impl TermKind {
    /// All term kinds, in discriminant order.
    pub const ALL: [TermKind; 3] = [TermKind::Resource, TermKind::Token, TermKind::Literal];

    /// Recovers a kind from its packed discriminant.
    #[inline]
    pub(crate) fn from_tag(tag: u32) -> TermKind {
        match tag {
            0 => TermKind::Resource,
            1 => TermKind::Token,
            _ => TermKind::Literal,
        }
    }
}

impl fmt::Display for TermKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TermKind::Resource => "resource",
            TermKind::Token => "token",
            TermKind::Literal => "literal",
        };
        f.write_str(name)
    }
}

/// A compact identifier for an interned term.
///
/// The top two bits carry the [`TermKind`]; the low 30 bits are a dense
/// per-kind index assigned by the [`TermDict`](crate::dict::TermDict). This
/// bounds each kind at 2^30 (~1 billion) terms, far above the paper's 440 M
/// *triples*.
///
/// `TermId`s order first by kind, then by interning order. Ordering is only
/// used internally (index keys); it carries no semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Maximum per-kind index representable by a [`TermId`].
pub const MAX_TERM_INDEX: u32 = (1 << 30) - 1;

impl TermId {
    /// Packs a kind and per-kind index into a `TermId`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`MAX_TERM_INDEX`].
    #[inline]
    pub fn new(kind: TermKind, index: u32) -> TermId {
        assert!(index <= MAX_TERM_INDEX, "term index overflow: {index}");
        TermId(((kind as u32) << 30) | index)
    }

    /// The kind of this term.
    #[inline]
    pub fn kind(self) -> TermKind {
        TermKind::from_tag(self.0 >> 30)
    }

    /// The dense per-kind index of this term.
    #[inline]
    pub fn index(self) -> u32 {
        self.0 & MAX_TERM_INDEX
    }

    /// The raw packed representation (kind tag + index).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a `TermId` from [`TermId::raw`] output.
    #[inline]
    pub fn from_raw(raw: u32) -> TermId {
        TermId(raw)
    }

    /// True if this term is a canonical KG resource.
    #[inline]
    pub fn is_resource(self) -> bool {
        self.kind() == TermKind::Resource
    }

    /// True if this term is a textual Open IE token.
    #[inline]
    pub fn is_token(self) -> bool {
        self.kind() == TermKind::Token
    }

    /// True if this term is a literal value.
    #[inline]
    pub fn is_literal(self) -> bool {
        self.kind() == TermKind::Literal
    }

    /// The shard (in `0..shards`) this term hashes to under the store's
    /// subject-hash partitioning scheme (see
    /// [`XkgBuilder::build_sharded`](crate::store::XkgBuilder::build_sharded)).
    ///
    /// Deterministic across processes: a Fibonacci-multiplicative hash of
    /// the packed id followed by a fixed-point range reduction, so every
    /// component that needs to locate a subject's shard (builders,
    /// executors, condition oracles) agrees without sharing state.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[inline]
    pub fn shard_of(self, shards: usize) -> usize {
        assert!(shards > 0, "shard count must be positive");
        let h = self.0.wrapping_mul(0x9E37_79B9);
        ((u64::from(h) * shards as u64) >> 32) as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind(), self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_all_kinds() {
        for kind in TermKind::ALL {
            for index in [0, 1, 42, MAX_TERM_INDEX] {
                let id = TermId::new(kind, index);
                assert_eq!(id.kind(), kind);
                assert_eq!(id.index(), index);
                assert_eq!(TermId::from_raw(id.raw()), id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "term index overflow")]
    fn index_overflow_panics() {
        let _ = TermId::new(TermKind::Resource, MAX_TERM_INDEX + 1);
    }

    #[test]
    fn ordering_groups_by_kind() {
        let r = TermId::new(TermKind::Resource, MAX_TERM_INDEX);
        let t = TermId::new(TermKind::Token, 0);
        let l = TermId::new(TermKind::Literal, 0);
        assert!(r < t && t < l);
    }

    #[test]
    fn kind_predicates() {
        assert!(TermId::new(TermKind::Resource, 3).is_resource());
        assert!(TermId::new(TermKind::Token, 3).is_token());
        assert!(TermId::new(TermKind::Literal, 3).is_literal());
    }

    #[test]
    fn debug_format_is_compact() {
        let id = TermId::new(TermKind::Token, 7);
        assert_eq!(format!("{id:?}"), "token#7");
    }
}
