//! LSM-style segmented store: frozen base + mutable delta.
//!
//! Everything in [`XkgStore`](crate::XkgStore) is frozen at `build()`,
//! but a production KG ingests continuously. [`SegmentedStore`] layers a
//! small mutable delta segment over a frozen base segment:
//!
//! - [`SegmentedStore::ingest`] appends a batch into the delta and
//!   re-freezes *only the delta* into a fully indexed view, so the base's
//!   permutation and posting indexes are never rebuilt. A segment is just
//!   another merge source: queries serve posting lists per segment and
//!   union them through the engine's rank-merge seam.
//! - [`SegmentedStore::compact`] merges the delta (and any pending
//!   provenance absorbs) back into a single frozen base, emptying the
//!   delta.
//!
//! Re-observation of a triple the base already holds does not duplicate
//! it: the provenance merge is queued as a *pending absorb* and applied
//! at the next compaction (until then the base serves the fact with its
//! pre-ingest weight — deltas only ever add mass for genuinely new
//! facts, which keeps every frozen index valid between compactions).
//!
//! Global [`TripleId`]s over a segmented store are `base ids` followed by
//! `base.len() + delta-local ids`; compaction reassigns them.

use crate::pattern::SlotPattern;
use crate::store::{XkgBuilder, XkgStore};
use crate::term::TermId;
use crate::triple::{GraphTag, Provenance, SourceId, Triple, TripleId};

/// A frozen base segment plus a small mutable delta segment.
#[derive(Debug)]
pub struct SegmentedStore {
    base: XkgStore,
    /// Accumulates ingested triples between compactions. Its dictionary
    /// and source table are supersets of the base's (same ids), so terms
    /// interned during ingestion resolve against either segment.
    delta: XkgBuilder,
    /// The delta re-frozen into a fully indexed store; `None` while the
    /// delta is empty. Rebuilt on every ingest — the delta is small by
    /// design, the base is never touched.
    delta_view: Option<XkgStore>,
    /// Provenance merges for re-observed *base* triples, keyed by the
    /// base-local id; applied at the next compaction.
    pending: Vec<(TripleId, Provenance)>,
    /// Bumped on every mutation (ingest or compact). Caches keyed by
    /// pattern stamp entries with this and drop them when it moves.
    generation: u64,
    /// Wall time of the most recent [`SegmentedStore::ingest`], in
    /// nanoseconds; `0` until the first ingest. Read by the system
    /// facade into its metrics registry.
    last_ingest_ns: u64,
    /// Wall time of the most recent [`SegmentedStore::compact`], in
    /// nanoseconds; `0` until the first compaction.
    last_compact_ns: u64,
}

impl SegmentedStore {
    /// Wraps a frozen store as the base segment with an empty delta.
    pub fn new(base: XkgStore) -> SegmentedStore {
        let delta = XkgBuilder::with_context(base.dict().clone(), base.sources());
        SegmentedStore {
            base,
            delta,
            delta_view: None,
            pending: Vec::new(),
            generation: 0,
            last_ingest_ns: 0,
            last_compact_ns: 0,
        }
    }

    /// The frozen base segment.
    #[inline]
    pub fn base(&self) -> &XkgStore {
        &self.base
    }

    /// The delta segment's frozen view, or `None` while the delta is
    /// empty.
    #[inline]
    pub fn delta_view(&self) -> Option<&XkgStore> {
        self.delta_view.as_ref()
    }

    /// The store to resolve vocabulary against: the delta view when one
    /// exists (its dictionary is a superset of the base's, with
    /// identical ids for shared terms), the base otherwise.
    #[inline]
    pub fn vocab(&self) -> &XkgStore {
        self.delta_view.as_ref().unwrap_or(&self.base)
    }

    /// Number of triples currently in the delta segment.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Number of provenance merges queued for the next compaction.
    pub fn pending_absorbs(&self) -> usize {
        self.pending.len()
    }

    /// The store generation: bumped by every [`SegmentedStore::ingest`]
    /// and [`SegmentedStore::compact`]. Two reads under the same
    /// generation observe an identical store.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total triples across both segments (pending absorbs merge into
    /// existing base triples and add none).
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True if both segments are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Triples per stratum across both segments.
    pub fn len_of(&self, graph: GraphTag) -> usize {
        let delta = self
            .delta
            .provenances()
            .iter()
            .filter(|p| p.graph == graph)
            .count();
        self.base.len_of(graph) + delta
    }

    /// The live segments in global-id order: base first, then the delta
    /// view if the delta is non-empty.
    pub fn segments(&self) -> Vec<&XkgStore> {
        let mut out = vec![&self.base];
        out.extend(self.delta_view.as_ref());
        out
    }

    /// Resolves a global triple id to its segment and segment-local id.
    /// Global ids enumerate the base then the delta view.
    fn resolve(&self, id: TripleId) -> (&XkgStore, TripleId) {
        let base_len = self.base.len() as u32;
        if id.0 < base_len {
            return (&self.base, id);
        }
        // Ids past the base are only issued while a delta view exists; a
        // stale id with no delta degrades to the base segment, whose
        // bounds-checked accessor reports it as out of range.
        match self.delta_view.as_ref() {
            Some(view) => (view, TripleId(id.0 - base_len)),
            None => (&self.base, id),
        }
    }

    /// The triple with the given *global* id (base ids first, then
    /// delta ids offset by `base.len()`).
    pub fn triple(&self, id: TripleId) -> Triple {
        let (seg, local) = self.resolve(id);
        seg.triple(local)
    }

    /// Provenance of the triple with the given global id.
    pub fn provenance(&self, id: TripleId) -> &Provenance {
        let (seg, local) = self.resolve(id);
        seg.provenance(local)
    }

    /// Renders a term for display (the delta dictionary is a superset of
    /// the base's, so every term of either segment resolves).
    pub fn display_term(&self, id: TermId) -> String {
        self.vocab().display_term(id)
    }

    /// Renders a triple with a global id in `S P O` form.
    pub fn display_triple(&self, id: TripleId) -> String {
        let (seg, local) = self.resolve(id);
        seg.display_triple(local)
    }

    /// Resolves a source id to its document identifier.
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.vocab().source_name(id)
    }

    /// Ingests a batch of triples: `fill` appends into a scratch builder
    /// whose dictionary/source table extend the current vocabulary, and
    /// the batch lands in the delta segment, which is re-frozen into an
    /// indexed view. Returns the number of *new* triples appended;
    /// re-observations of base triples are queued as pending provenance
    /// absorbs instead (applied at the next [`SegmentedStore::compact`]),
    /// and re-observations of delta triples merge in place.
    pub fn ingest(&mut self, fill: impl FnOnce(&mut XkgBuilder)) -> usize {
        let ingest_start = trinit_obs::now_ns();
        let mut scratch = XkgBuilder::with_context(self.delta.dict().clone(), self.delta.sources());
        fill(&mut scratch);
        // Rebuild the delta under the scratch's (possibly grown)
        // dictionary so batch-interned terms resolve in the delta view.
        let mut next = XkgBuilder::with_context(scratch.dict().clone(), scratch.sources());
        for (t, p) in self.delta.triples().iter().zip(self.delta.provenances()) {
            next.add(*t, p.clone());
        }
        let mut appended = 0;
        for (t, p) in scratch.triples().iter().zip(scratch.provenances()) {
            let ground = SlotPattern::new(Some(t.s), Some(t.p), Some(t.o));
            if let Some(&base_id) = self.base.lookup(&ground).first() {
                self.pending.push((base_id, p.clone()));
            } else if next.add(*t, p.clone()).idx() == next.len() - 1 {
                appended += 1;
            }
        }
        self.delta = next;
        self.delta_view = (!self.delta.is_empty()).then(|| self.delta.clone().build());
        self.generation += 1;
        self.last_ingest_ns = trinit_obs::now_ns().saturating_sub(ingest_start);
        appended
    }

    /// Re-freezes the delta into the base: base triples, pending
    /// provenance absorbs, and delta triples merge into one fresh frozen
    /// store with rebuilt sorted strata, and the delta empties. Global
    /// triple ids are reassigned.
    pub fn compact(&mut self) {
        let compact_start = trinit_obs::now_ns();
        let mut merged = XkgBuilder::with_context(self.delta.dict().clone(), self.delta.sources());
        for (id, t) in self.base.iter() {
            merged.add(t, self.base.provenance(id).clone());
        }
        for (id, prov) in std::mem::take(&mut self.pending) {
            merged.add(self.base.triple(id), prov);
        }
        for (t, p) in self.delta.triples().iter().zip(self.delta.provenances()) {
            merged.add(*t, p.clone());
        }
        // Compaction re-freezes into the base's configured layout: a
        // Packed base stays Packed, a Flat base stays Flat. The hot
        // delta view is always rebuilt Flat regardless (see `ingest`).
        self.base = merged.build_with(self.base.layout());
        self.delta = XkgBuilder::with_context(self.base.dict().clone(), self.base.sources());
        self.delta_view = None;
        self.generation += 1;
        self.last_compact_ns = trinit_obs::now_ns().saturating_sub(compact_start);
    }

    /// Wall time of the most recent ingest batch, in nanoseconds (`0`
    /// before the first ingest).
    #[inline]
    pub fn last_ingest_ns(&self) -> u64 {
        self.last_ingest_ns
    }

    /// Wall time of the most recent compaction, in nanoseconds (`0`
    /// before the first compaction).
    #[inline]
    pub fn last_compact_ns(&self) -> u64 {
        self.last_compact_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::PostingList;

    fn base_builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..12u32 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{}", i % 4));
            if i % 3 == 0 {
                let s = b.dict_mut().resource(&format!("s{i}"));
                let p = b.dict_mut().token("close to");
                let o = b.dict_mut().resource(&format!("o{}", (i + 1) % 4));
                let src = b.intern_source(&format!("doc{i}"));
                b.add_extracted(s, p, o, 0.4 + (i % 5) as f32 * 0.1, src);
            }
        }
        b
    }

    fn ingest_batch(b: &mut XkgBuilder) {
        for i in 12..18u32 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{}", i % 4));
        }
        let s = b.dict_mut().resource("s1");
        let p = b.dict_mut().token("linked to");
        let o = b.dict_mut().resource("fresh");
        let src = b.intern_source("delta-doc");
        b.add_extracted(s, p, o, 0.9, src);
    }

    /// The union store every segmented query must agree with: base and
    /// batch rebuilt from scratch as one monolithic store.
    fn rebuilt_union() -> XkgStore {
        let mut b = base_builder();
        ingest_batch(&mut b);
        b.build()
    }

    fn segmented() -> SegmentedStore {
        let mut seg = SegmentedStore::new(base_builder().build());
        seg.ingest(ingest_batch);
        seg
    }

    /// Multiset of (triple, weight) a pattern matches in a store,
    /// via the reference scan path.
    fn scan_set(store: &XkgStore, pattern: &SlotPattern) -> Vec<(Triple, u64)> {
        let list = PostingList::build_by_scan(store, pattern);
        let mut out: Vec<(Triple, u64)> = list
            .entries()
            .iter()
            .map(|e| (store.triple(e.triple), e.weight.to_bits()))
            .collect();
        out.sort();
        out
    }

    fn all_shapes(store: &XkgStore) -> Vec<SlotPattern> {
        let s = store.resource("s1").unwrap();
        let p = store.resource("p").unwrap();
        let o = store.resource("o1").unwrap();
        vec![
            SlotPattern::new(None, None, None),
            SlotPattern::new(Some(s), None, None),
            SlotPattern::new(None, Some(p), None),
            SlotPattern::new(None, None, Some(o)),
            SlotPattern::new(Some(s), Some(p), None),
            SlotPattern::new(Some(s), None, Some(o)),
            SlotPattern::new(None, Some(p), Some(o)),
            SlotPattern::new(Some(s), Some(p), Some(o)),
        ]
    }

    #[test]
    fn segment_union_matches_rebuilt_store_for_all_shapes() {
        let seg = segmented();
        let union = rebuilt_union();
        for pattern in all_shapes(&union) {
            let mut got: Vec<(Triple, u64)> = Vec::new();
            for segment in seg.segments() {
                got.extend(scan_set(segment, &pattern));
            }
            got.sort();
            assert_eq!(got, scan_set(&union, &pattern), "shape {pattern}");
        }
    }

    #[test]
    fn compact_preserves_the_union() {
        let mut seg = segmented();
        let union = rebuilt_union();
        seg.compact();
        assert!(seg.delta_view().is_none());
        assert_eq!(seg.delta_len(), 0);
        assert_eq!(seg.len(), union.len());
        for pattern in all_shapes(&union) {
            assert_eq!(
                scan_set(seg.base(), &pattern),
                scan_set(&union, &pattern),
                "shape {pattern}"
            );
        }
    }

    #[test]
    fn packed_base_stays_packed_through_compact() {
        use crate::pack::SegmentLayout;
        let mut seg = SegmentedStore::new(base_builder().build_with(SegmentLayout::Packed));
        assert!(!seg.base().layout().is_flat());
        seg.ingest(ingest_batch);
        // The hot delta view is always frozen Flat.
        assert!(seg.delta_view().unwrap().layout().is_flat());
        seg.compact();
        assert!(!seg.base().layout().is_flat(), "compact must keep the base Packed");
        let union = rebuilt_union();
        for pattern in all_shapes(&union) {
            assert_eq!(
                scan_set(seg.base(), &pattern),
                scan_set(&union, &pattern),
                "shape {pattern}"
            );
        }
    }

    #[test]
    fn reobserved_base_triple_queues_pending_absorb() {
        let mut seg = SegmentedStore::new(base_builder().build());
        let before = seg.base().len();
        let appended = seg.ingest(|b| {
            // `s1 p o1` already exists in the base.
            b.add_kg_resources("s1", "p", "o1");
        });
        assert_eq!(appended, 0);
        assert_eq!(seg.delta_len(), 0, "re-observation must not enter the delta");
        assert!(seg.delta_view().is_none());
        assert_eq!(seg.pending_absorbs(), 1);
        seg.compact();
        assert_eq!(seg.base().len(), before, "absorb adds no triple");
        let s = seg.base().resource("s1").unwrap();
        let p = seg.base().resource("p").unwrap();
        let o = seg.base().resource("o1").unwrap();
        let ids = seg.base().lookup(&SlotPattern::new(Some(s), Some(p), Some(o)));
        assert_eq!(seg.base().provenance(ids[0]).support, 2);
        assert_eq!(seg.pending_absorbs(), 0);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut seg = SegmentedStore::new(base_builder().build());
        assert_eq!(seg.generation(), 0);
        seg.ingest(ingest_batch);
        assert_eq!(seg.generation(), 1);
        seg.compact();
        assert_eq!(seg.generation(), 2);
    }

    #[test]
    fn delta_vocab_extends_base_vocab() {
        let seg = segmented();
        assert!(seg.base().resource("fresh").is_none());
        let fresh = seg.vocab().resource("fresh").unwrap();
        // Shared terms keep their base ids in the delta dictionary.
        assert_eq!(seg.vocab().resource("s1"), seg.base().resource("s1"));
        let view = seg.delta_view().unwrap();
        assert_eq!(view.lookup(&SlotPattern::new(None, None, Some(fresh))).len(), 1);
    }

    #[test]
    fn global_ids_resolve_across_segments() {
        let seg = segmented();
        let base_len = seg.base().len() as u32;
        let t = seg.triple(TripleId(0));
        assert_eq!(t, seg.base().triple(TripleId(0)));
        let view = seg.delta_view().unwrap();
        let dt = seg.triple(TripleId(base_len));
        assert_eq!(dt, view.triple(TripleId(0)));
        assert_eq!(
            seg.display_triple(TripleId(base_len)),
            view.display_triple(TripleId(0))
        );
        assert_eq!(seg.len(), seg.base().len() + view.len());
    }

    #[test]
    fn len_of_counts_both_segments() {
        let seg = segmented();
        let union = rebuilt_union();
        assert_eq!(seg.len_of(GraphTag::Kg), union.len_of(GraphTag::Kg));
        assert_eq!(seg.len_of(GraphTag::Xkg), union.len_of(GraphTag::Xkg));
    }
}
