//! System-level observability: per-query traces on [`QueryOutcome`],
//! the process-wide [`MetricsRegistry`] behind [`Trinit`], and the
//! cache tally dropped [`Session`]s fold in.

use trinit_core::fixtures::{paper_rules, paper_store};
use trinit_core::shard::{SeedMode, ShardedStore};
use trinit_core::xkg::XkgBuilder;
use trinit_core::{Counter, Engine, Gauge, ObsConfig, Session, Stage, Trinit};

const FACTS: &[(&str, &str, &str)] = &[
    ("ann", "likes", "tea"),
    ("bob", "likes", "tea"),
    ("cal", "likes", "ice"),
    ("dan", "likes", "tea"),
];

fn kg_builder(rows: &[(&str, &str, &str)]) -> XkgBuilder {
    let mut b = XkgBuilder::new();
    for (s, p, o) in rows {
        b.add_kg_resources(s, p, o);
    }
    b
}

fn add_delta(b: &mut XkgBuilder) {
    b.add_kg_resources("eve", "likes", "soda");
    b.add_kg_resources("fay", "likes", "tea");
}

#[test]
fn query_outcomes_carry_traces_and_feed_the_registry() {
    let store = paper_store();
    let rules = paper_rules(&store);
    let sys = Trinit::from_parts(store, rules);

    let outcome = sys.query("?x bornIn Ulm").unwrap();
    let trace = outcome.trace();
    assert!(!trace.is_empty(), "instrumented query must record spans");
    assert_eq!(trace.stage_count(Stage::Query), 1, "one query span");
    assert!(
        trace.stage_total_ns(Stage::Query) >= trace.stage_total_ns(Stage::JoinRound),
        "the query span covers its join rounds"
    );
    let json = trace.to_json();
    assert!(json.contains("\"spans\""), "{json}");

    sys.query("AlbertEinstein hasAdvisor ?x").unwrap();
    let reg = sys.registry();
    assert_eq!(reg.get(Counter::Queries), 2);
    assert!(reg.get(Counter::Answers) >= 1);
    assert_eq!(
        reg.get(Counter::CompletenessExact)
            + reg.get(Counter::CompletenessApprox)
            + reg.get(Counter::CompletenessTruncated),
        2,
        "every query lands in exactly one completeness bucket"
    );
    assert_eq!(reg.query_wall().count(), 2, "per-query wall is sampled");
    assert!(
        reg.stage(Stage::Query).count() >= 2,
        "query spans feed the stage histograms"
    );
}

#[test]
fn obs_off_disables_tracing_without_changing_answers() {
    let store = paper_store();
    let rules = paper_rules(&store);
    let on = Trinit::from_parts(paper_store(), paper_rules(&paper_store()));
    let mut off = Trinit::from_parts(store, rules);
    off.set_obs(ObsConfig::off());

    let q = "?x bornIn Ulm";
    let traced = on.query(q).unwrap();
    let silent = off.query(q).unwrap();
    assert!(!traced.trace().is_empty());
    assert!(silent.trace().is_empty(), "ObsConfig::off records nothing");
    assert_eq!(traced.answers.len(), silent.answers.len());
    for (a, b) in traced.answers.iter().zip(&silent.answers) {
        assert!((a.score - b.score).abs() < 1e-12);
    }
    // Counters still tick with tracing off — only spans are elided.
    assert_eq!(off.registry().get(Counter::Queries), 1);
    assert_eq!(off.registry().stage(Stage::Query).count(), 0);
}

#[test]
fn ingest_and_compact_feed_counters_gauges_and_stage_histograms() {
    for mut sys in [
        Trinit::from_parts(kg_builder(FACTS).build(), trinit_core::relax::RuleSet::new()),
        Trinit::from_sharded_parts(
            ShardedStore::build(kg_builder(FACTS), 2),
            trinit_core::relax::RuleSet::new(),
        ),
    ] {
        let appended = sys.ingest(add_delta);
        assert_eq!(appended, 2);
        let reg = sys.registry();
        assert_eq!(reg.get(Counter::IngestBatches), 1);
        assert_eq!(reg.get(Counter::IngestedTriples), 2);
        assert_eq!(reg.stage(Stage::Ingest).count(), 1, "ingest wall sampled");
        assert!(reg.gauge(Gauge::DeltaTriples) > 0, "delta gauge is live");
        let total = reg.gauge(Gauge::StoreTriples);
        assert!(total >= FACTS.len() as u64 + 2);

        sys.compact();
        let reg = sys.registry();
        assert_eq!(reg.get(Counter::Compactions), 1);
        assert_eq!(reg.stage(Stage::Compact).count(), 1);
        assert_eq!(reg.gauge(Gauge::DeltaTriples), 0, "compaction drains delta");
        assert_eq!(reg.gauge(Gauge::StoreTriples), total, "no triples lost");
        assert_eq!(reg.gauge(Gauge::StoreGeneration), sys.generation());
    }
}

#[test]
fn metrics_snapshot_serializes_counters_and_quantiles() {
    let sys = Trinit::from_parts(paper_store(), paper_rules(&paper_store()));
    sys.query("?x bornIn Ulm").unwrap();
    let json = sys.metrics_snapshot();
    for key in [
        "\"counters\"",
        "\"queries\":1",
        "\"gauges\"",
        "\"cache\"",
        "\"poison_recoveries\"",
        "\"query_wall_ns\"",
        "\"stages_ns\"",
        "\"p50\"",
        "\"p90\"",
        "\"p99\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn sharded_paths_trace_seed_merge_and_batches() {
    let sys = Trinit::from_sharded_parts(
        ShardedStore::build(kg_builder(FACTS), 3),
        trinit_core::relax::RuleSet::new(),
    );
    let q = sys.parse("?p likes tea LIMIT 10").unwrap();
    let outcome = sys.run(q, Engine::IncrementalTopK);
    let trace = outcome.trace();
    assert_eq!(trace.stage_count(Stage::Query), 1);
    assert_eq!(trace.stage_count(Stage::Merge), 1);
    assert_eq!(
        trace.stage_count(Stage::SeedTask),
        3,
        "one seed span per shard: {trace:?}"
    );

    // The work-stealing batch path observes each query and carries its
    // merged trace (queries < workers routes through the stealer).
    let queries: Vec<_> = (0..2)
        .map(|_| sys.parse("?p likes tea LIMIT 10").unwrap())
        .collect();
    let before = sys.registry().get(Counter::Queries);
    let results = sys.run_batch(queries, Engine::IncrementalTopK);
    assert_eq!(results.len(), 2);
    for r in &results {
        let out = r.as_ref().expect("batch slot completes");
        assert!(!out.trace().is_empty(), "batch outcomes carry traces");
        assert_eq!(out.trace().stage_count(Stage::SeedTask), 3);
        assert_eq!(out.trace().dropped, 0);
    }
    assert_eq!(sys.registry().get(Counter::Queries), before + 2);
    assert_eq!(sys.registry().get(Counter::QueryFailures), 0);
}

#[test]
fn delta_restricted_outcomes_carry_traces_on_both_backends() {
    for mut sys in [
        Trinit::from_parts(kg_builder(FACTS).build(), trinit_core::relax::RuleSet::new()),
        Trinit::from_sharded_parts(
            ShardedStore::build(kg_builder(FACTS), 2),
            trinit_core::relax::RuleSet::new(),
        ),
    ] {
        sys.ingest(add_delta);
        let q = sys.parse("?p likes tea LIMIT 10").unwrap();
        let before = sys.registry().get(Counter::Queries);
        let introduced = sys.answers_introduced_by(q);
        assert_eq!(introduced.answers.len(), 1, "only fay is new");
        assert!(!introduced.trace().is_empty(), "delta pass traces too");
        assert_eq!(introduced.trace().stage_count(Stage::Query), 1);
        assert_eq!(sys.registry().get(Counter::Queries), before + 1);
    }
}

#[test]
fn dropped_sessions_fold_cache_traffic_into_the_registry() {
    let sys = Trinit::from_parts(paper_store(), paper_rules(&paper_store()));
    let q = "AlbertEinstein affiliation ?x LIMIT 5";
    {
        let session = Session::new(&sys);
        session.query(q).unwrap();
        session.query(q).unwrap();
        let stats = session.cache_stats();
        assert!(stats.hits > 0 && stats.misses > 0);
        // Live sessions are private: nothing folded yet.
        let tally = sys.registry().cache_tally();
        assert_eq!(tally.hits, 0);
        assert_eq!(tally.misses, 0);
    }
    // Drop folded the session's lifetime tally process-wide.
    let tally = sys.registry().cache_tally();
    assert!(tally.hits > 0, "session hits folded at drop: {tally:?}");
    assert!(tally.misses > 0);
    let json = sys.metrics_snapshot();
    assert!(
        json.contains(&format!("\"hits\":{}", tally.hits)),
        "snapshot surfaces the folded tally: {json}"
    );
}

#[test]
fn sharded_session_seed_modes_preserve_traces() {
    let sys = Trinit::from_sharded_parts(
        ShardedStore::build(kg_builder(FACTS), 2),
        trinit_core::relax::RuleSet::new(),
    );
    let session = Session::new(&sys);
    let q = sys.parse("?p likes tea LIMIT 10").unwrap();
    let out = sys.run_with_rules_shard_cached(
        q,
        Engine::IncrementalTopK,
        session.rules(),
        Some(session.shard_posting_caches()),
        SeedMode::Sequential,
    );
    assert_eq!(out.trace().stage_count(Stage::SeedTask), 2);
    assert_eq!(out.trace().stage_count(Stage::Merge), 1);
}
