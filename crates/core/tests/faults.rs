//! Facade-level fault-injection acceptance test (feature `faults`).
//!
//! The contract a serving tier builds on: a batch submitted through
//! [`Trinit::run_batch`] survives any single worker panic — the
//! poisoned query's slot carries a typed [`ExecError::WorkerPanicked`],
//! every other query completes with its normal answers, and the process
//! never aborts.

#![cfg(feature = "faults")]

use trinit_core::faults::{FaultPlan, FaultScope};
use trinit_core::worldgen::{CorpusConfig, KgConfig, World, WorldConfig};
use trinit_core::{Engine, ExecError, Trinit, TrinitBuilder};
use trinit_query::Query;

fn tiny_sharded_system(shards: usize) -> Trinit {
    let world = World::generate(WorldConfig::tiny(11));
    let mut builder =
        TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(7));
    builder.options_mut().shards(shards);
    builder.build()
}

#[test]
fn run_batch_isolates_a_single_worker_panic() {
    let sys = tiny_sharded_system(4);
    let texts = [
        "?x type person LIMIT 4",
        "?x type university LIMIT 3",
        "?x type city LIMIT 5",
    ];
    let queries: Vec<Query> = texts.iter().map(|t| sys.parse(t).unwrap()).collect();
    let sequential: Vec<_> = texts
        .iter()
        .map(|t| sys.query(t).unwrap().answers)
        .collect();

    // Three queries < four workers routes through the stealing
    // scheduler; panic query 1's seed task on shard 0.
    let victim = 1;
    let _scope = FaultScope::install(FaultPlan {
        seed_panics: vec![(victim, 0)],
        ..FaultPlan::default()
    });
    let batch = sys.run_batch(queries, Engine::IncrementalTopK);
    assert_eq!(batch.len(), texts.len());
    for (qi, outcome) in batch.iter().enumerate() {
        if qi == victim {
            let err = outcome.as_ref().expect_err("victim query must error");
            let ExecError::WorkerPanicked { context, payload } = err;
            assert!(context.contains("shard 0"), "context was: {context}");
            assert!(payload.contains("injected fault"), "payload was: {payload}");
        } else {
            let outcome = outcome.as_ref().expect("bystander query must complete");
            assert_eq!(outcome.answers.len(), sequential[qi].len());
            for (x, y) in outcome.answers.iter().zip(&sequential[qi]) {
                assert!((x.score - y.score).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn fixed_pool_batches_also_isolate_panics() {
    let sys = tiny_sharded_system(2);
    // At least as many queries as workers routes through the fixed
    // pool; its per-query catch_unwind provides the same isolation.
    let texts = [
        "?x type person LIMIT 4",
        "?x type university LIMIT 3",
        "?x type city LIMIT 5",
    ];
    let queries: Vec<Query> = texts.iter().map(|t| sys.parse(t).unwrap()).collect();
    let victim = 2;
    let _scope = FaultScope::install(FaultPlan {
        merge_panics: vec![victim],
        ..FaultPlan::default()
    });
    let batch = sys.run_batch_stealing(queries, Engine::IncrementalTopK, 2);
    let err = batch[victim].as_ref().expect_err("victim query must error");
    let ExecError::WorkerPanicked { context, .. } = err;
    assert!(context.contains("merge phase"), "context was: {context}");
    for (qi, outcome) in batch.iter().enumerate() {
        if qi != victim {
            let outcome = outcome.as_ref().expect("bystander query must complete");
            assert!(!outcome.answers.is_empty(), "query {qi} lost its answers");
        }
    }
}
