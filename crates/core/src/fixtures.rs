//! The paper's running example as a ready-made store and rule set.
//!
//! [`paper_store`] materializes exactly the sample KG of Figure 1 plus
//! the XKG extension of Figure 3; [`paper_rules`] builds the four
//! relaxation rules of Figure 4. Examples, tests, and the E3/E6/E7
//! reproductions all run against these fixtures.

use trinit_relax::{RVar, Rule, RuleProvenance, RuleSet, TTerm, Template};
use trinit_xkg::{XkgBuilder, XkgStore};

/// Builds the paper's sample XKG: Figure 1 (KG) + Figure 3 (extension),
/// plus the `type` triples the granularity rule needs.
pub fn paper_store() -> XkgStore {
    let mut b = XkgBuilder::new();

    // Figure 1: sample knowledge graph.
    b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
    b.add_kg_resources("Ulm", "locatedIn", "Germany");
    b.add_kg_literal("AlbertEinstein", "bornOn", "1879-03-14");
    b.add_kg_resources("AlfredKleiner", "hasStudent", "AlbertEinstein");
    b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
    b.add_kg_resources("PrincetonUniversity", "member", "IvyLeague");

    // Ontological typing (Yago2s-style), needed by rule 1.
    b.add_kg_resources("AlbertEinstein", "type", "person");
    b.add_kg_resources("AlfredKleiner", "type", "person");
    b.add_kg_resources("Ulm", "type", "city");
    b.add_kg_resources("Germany", "type", "country");
    b.add_kg_resources("IAS", "type", "institute");
    b.add_kg_resources("PrincetonUniversity", "type", "university");
    b.add_kg_resources("IvyLeague", "type", "league");

    // Figure 3: sample knowledge graph extension (Open IE triples).
    let einstein = b.dict_mut().resource("AlbertEinstein");
    let ias = b.dict_mut().resource("IAS");
    let princeton = b.dict_mut().resource("PrincetonUniversity");

    let won_nobel = b.dict_mut().token("won nobel for");
    let discovery = b
        .dict_mut()
        .token("discovery of the photoelectric effect");
    let housed_in = b.dict_mut().token("housed in");
    let lectured_at = b.dict_mut().token("lectured at");
    let met_teacher = b.dict_mut().token("met his teacher");
    let prof_kleiner = b.dict_mut().token("prof. kleiner");

    let d1 = b.intern_source("clueweb:doc-000017");
    let d2 = b.intern_source("clueweb:doc-002381");
    let d3 = b.intern_source("clueweb:doc-104455");

    b.add_extracted(einstein, won_nobel, discovery, 0.85, d1);
    b.add_extracted(ias, housed_in, princeton, 0.9, d2);
    b.add_extracted(einstein, lectured_at, princeton, 0.8, d2);
    b.add_extracted(einstein, met_teacher, prof_kleiner, 0.6, d3);

    b.build()
}

/// Builds the four relaxation rules of Figure 4 against `store`.
///
/// 1. `?x bornIn ?y ; ?y type country → ?x bornIn ?z ; ?z type city ;
///    ?z locatedIn ?y` (w = 1.0)
/// 2. `?x hasAdvisor ?y → ?y hasStudent ?x` (w = 1.0)
/// 3. `?x affiliation ?y → ?x affiliation ?z ; ?z 'housed in' ?y`
///    (w = 0.8)
/// 4. `?x affiliation ?y → ?x 'lectured at' ?y` (w = 0.7)
///
/// `hasAdvisor` is not in the store's vocabulary (that is user B's whole
/// problem); the returned rule set interns nothing — rule 2 is built
/// against the id the caller obtains from
/// [`trinit_query::QueryBuilder::resource`], so this function also
/// returns that id for reuse.
pub fn paper_rules(store: &XkgStore) -> RuleSet {
    let mut rules = RuleSet::new();
    let r = |name: &str| store.resource(name).expect("fixture resource");
    let t = |name: &str| store.token(name).expect("fixture token");

    let (x, y, z) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)), TTerm::Var(RVar(2)));

    // Rule 1 (granularity).
    rules.add(Rule::structural(
        "?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type city ; ?z locatedIn ?y",
        vec![
            Template::new(x, TTerm::Const(r("bornIn")), y),
            Template::new(y, TTerm::Const(r("type")), TTerm::Const(r("country"))),
        ],
        vec![
            Template::new(x, TTerm::Const(r("bornIn")), z),
            Template::new(z, TTerm::Const(r("type")), TTerm::Const(r("city"))),
            Template::new(z, TTerm::Const(r("locatedIn")), y),
        ],
        1.0,
        RuleProvenance::Ontology,
    ));

    // Rule 2 (inversion) is added by callers that know the hasAdvisor id
    // (see `paper_rules_with_advisor`).

    // Rule 3 (structural: move into the XKG via 'housed in').
    rules.add(Rule::structural(
        "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y",
        vec![Template::new(x, TTerm::Const(r("affiliation")), y)],
        vec![
            Template::new(x, TTerm::Const(r("affiliation")), z),
            Template::new(z, TTerm::Const(t("housed in")), y),
        ],
        0.8,
        RuleProvenance::UserDefined,
    ));

    // Rule 4 (predicate rewrite into the XKG).
    rules.add(Rule::predicate_rewrite(
        "?x affiliation ?y => ?x 'lectured at' ?y",
        r("affiliation"),
        t("lectured at"),
        0.7,
        RuleProvenance::UserDefined,
    ));

    rules
}

/// [`paper_rules`] plus rule 2, which needs the out-of-vocabulary
/// `hasAdvisor` id the query layer assigned.
pub fn paper_rules_with_advisor(
    store: &XkgStore,
    has_advisor: trinit_xkg::TermId,
) -> RuleSet {
    let mut rules = paper_rules(store);
    let has_student = store.resource("hasStudent").expect("fixture resource");
    rules.add(Rule::inversion(
        "?x hasAdvisor ?y => ?y hasStudent ?x",
        has_advisor,
        has_student,
        1.0,
        RuleProvenance::MinedInversion,
    ));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::GraphTag;

    #[test]
    fn figure_1_and_3_counts() {
        let store = paper_store();
        assert_eq!(store.len_of(GraphTag::Kg), 13, "6 facts + 7 type triples");
        assert_eq!(store.len_of(GraphTag::Xkg), 4, "Figure 3 extension");
    }

    #[test]
    fn figure_4_rules() {
        let store = paper_store();
        let rules = paper_rules(&store);
        assert_eq!(rules.len(), 3);
        let weights: Vec<f64> = rules.iter().map(|(_, r)| r.weight).collect();
        assert_eq!(weights, vec![1.0, 0.8, 0.7]);
    }

    #[test]
    fn xkg_triples_have_sources() {
        let store = paper_store();
        let housed = store.token("housed in").unwrap();
        let ids = store.lookup(&trinit_xkg::SlotPattern::with_p(housed));
        assert_eq!(ids.len(), 1);
        assert!(!store.provenance(ids[0]).sources.is_empty());
    }
}
