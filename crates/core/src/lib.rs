//! # trinit-core — TriniT: exploratory querying of extended knowledge graphs
//!
//! A from-scratch Rust reproduction of **TriniT** (Yahya, Berberich,
//! Ramanath, Weikum: *Exploratory Querying of Extended Knowledge Graphs*,
//! PVLDB 9(13), 2016). TriniT tackles the two pain points of exploratory
//! KG querying — vocabulary mismatch and KG incompleteness — by
//!
//! 1. extending the KG with textual token triples mined by Open IE (the
//!    **XKG**, `trinit-xkg` + `trinit-openie`);
//! 2. relaxing queries through weighted rewrite rules, mined from the XKG
//!    itself (`trinit-relax`);
//! 3. ranking answers with a query-likelihood model under incremental
//!    top-k processing (`trinit-query`).
//!
//! This crate is the facade: [`TrinitBuilder`] builds a system from KG
//! facts + raw text, [`Trinit`] answers queries and provides the demo
//! features (answer explanation, query suggestion,
//! auto-completion), and [`Session`] adds user-defined rules.
//!
//! ```
//! use trinit_core::fixtures::{paper_store, paper_rules};
//! use trinit_core::Trinit;
//!
//! let store = paper_store();
//! let rules = paper_rules(&store);
//! let system = Trinit::from_parts(store, rules);
//! let outcome = system.query("?x bornIn Ulm").unwrap();
//! assert_eq!(outcome.answers.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod complete;
pub mod explain;
pub mod fixtures;
pub mod session;
pub mod suggest;
pub mod trinit;

pub use complete::{Completer, Completion};
pub use explain::{explain, explain_from, processing_report, ExplainSource, Explanation};
pub use session::{Session, SESSION_CACHE_CAPACITY};
pub use suggest::{suggest, suggest_sharded, SuggestConfig, Suggestion};
pub use trinit::{BuildOptions, BuildStats, Engine, QueryOutcome, Trinit, TrinitBuilder};

// Budgeted-execution surface: the serving tier reads a query's typed
// completeness and handles per-query worker panics without unwrapping
// through the sub-crates.
pub use trinit_query::{
    Completeness, CutoffReason, DegradationRung, ExecBudget, ExecError,
};

// Observability surface: per-query stage traces ride on
// [`QueryOutcome`], the process-wide registry serializes counters and
// latency quantiles via [`Trinit::metrics_snapshot`].
pub use trinit_obs::{
    CacheTally, Counter, Gauge, Histogram, MetricsRegistry, ObsConfig, QueryTrace, SpanRecord,
    Stage, TraceRecorder,
};
pub use trinit_obs as obs;

/// Deterministic fault-injection harness (feature `faults`): install a
/// [`faults::FaultPlan`] to arm seeded panics, per-pull latency, and
/// allocation pressure in robustness tests.
#[cfg(feature = "faults")]
pub use trinit_query::faults;

// Re-export the sub-crates so downstream users need only one dependency.
pub use trinit_openie as openie;
pub use trinit_query as query;
pub use trinit_relax as relax;
pub use trinit_shard as shard;
pub use trinit_worldgen as worldgen;
pub use trinit_xkg as xkg;
