//! Query suggestion (paper §5).
//!
//! Two mechanisms, exactly as the demo describes:
//!
//! * **Token → resource suggestion**: "When TriniT determines that
//!   matches for these tokens have a significant overlap with matches for
//!   highly related KG resources ..., these resources are suggested to
//!   the user for use in future queries."
//! * **Rule-invocation notices**: "When a structural relaxation rule
//!   (e.g. a predicate inversion rule) is invoked and contributes to the
//!   final answer set, TriniT informs the user of this effect."

use std::collections::HashMap;

use trinit_query::{Answer, Query};
use trinit_relax::{QTerm, RuleKind, RuleSet};
use trinit_shard::ShardedStore;
use trinit_xkg::{args_pairs, StoreStats, TermId, XkgStore};

/// One suggestion shown to the user after a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Suggestion {
    /// Replace a textual token with a canonical KG resource.
    ReplaceToken {
        /// The token as written by the user.
        token: String,
        /// The suggested canonical resource.
        resource: String,
        /// Overlap fraction of the token's matches covered by the
        /// resource's matches.
        overlap: f64,
        /// True if the overlap is with *reversed* arguments: the resource
        /// expresses the inverse relation (`'studied under'` vs
        /// `hasStudent`), so the suggestion implies swapping S and O.
        inverted: bool,
    },
    /// A relaxation rule was invoked and contributed answers.
    RuleInvoked {
        /// The rule's human-readable label.
        rule: String,
        /// The rule's weight.
        weight: f64,
        /// Whether the rule was structural (inversion/multi-pattern),
        /// which the paper calls out specially.
        structural: bool,
    },
}

impl Suggestion {
    /// Renders the suggestion as one line of text.
    pub fn render(&self) -> String {
        match self {
            Suggestion::ReplaceToken {
                token,
                resource,
                overlap,
                inverted,
            } => {
                let direction = if *inverted {
                    " with swapped arguments"
                } else {
                    ""
                };
                format!(
                    "consider the KG resource `{resource}`{direction} instead of '{token}' \
                     ({:.0}% of its matches are covered)",
                    overlap * 100.0
                )
            }
            Suggestion::RuleInvoked {
                rule,
                weight,
                structural,
            } => {
                if *structural {
                    format!(
                        "structural relaxation was applied: {rule} (weight {weight:.2})"
                    )
                } else {
                    format!("relaxation was applied: {rule} (weight {weight:.2})")
                }
            }
        }
    }
}

/// Configuration for suggestion generation.
#[derive(Debug, Clone)]
pub struct SuggestConfig {
    /// Minimum match-overlap fraction for token → resource suggestions.
    pub min_overlap: f64,
    /// Maximum suggestions per token.
    pub per_token: usize,
}

impl Default for SuggestConfig {
    fn default() -> Self {
        SuggestConfig {
            min_overlap: 0.3,
            per_token: 3,
        }
    }
}

/// Size of the intersection of two sorted, deduplicated pair lists.
fn sorted_overlap(a: &[(TermId, TermId)], b: &[(TermId, TermId)]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut overlap = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                overlap += 1;
                i += 1;
                j += 1;
            }
        }
    }
    overlap
}

/// Suggests canonical resources for token predicates used in `query`.
///
/// For a token predicate `t`, every resource predicate `r` with
/// `|args(t) ∩ args(r)| / |args(t)| ≥ min_overlap` is suggested,
/// strongest overlap first.
pub fn token_resource_suggestions(
    store: &XkgStore,
    query: &Query,
    cfg: &SuggestConfig,
) -> Vec<Suggestion> {
    let stats = StoreStats::compute(store);
    let predicates = stats.predicates().to_vec();
    token_resource_from(
        &|id| store.dict().resolve(id).map(str::to_string),
        &predicates,
        &|p| args_pairs(store, p),
        query,
        cfg,
    )
}

/// The sharded counterpart of [`suggest`]: predicate argument sets are
/// the sorted union of every shard's (subject-hash partitioning spreads
/// one predicate's triples across shards, so a single shard's `args(p)`
/// would miss overlaps).
pub fn suggest_sharded(
    store: &ShardedStore,
    query: &Query,
    rules: &RuleSet,
    answers: &[Answer],
    cfg: &SuggestConfig,
) -> Vec<Suggestion> {
    let mut out = token_resource_from(
        &|id| store.dict().resolve(id).map(str::to_string),
        store.predicates(),
        &|p| {
            let mut pairs: Vec<(TermId, TermId)> = store
                .shards()
                .iter()
                .flat_map(|shard| args_pairs(shard, p))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            pairs
        },
        query,
        cfg,
    );
    out.extend(rule_invocation_notices(rules, answers));
    out
}

/// Backend-independent core of the token → resource heuristic:
/// `predicates` enumerates the graph's predicates, `args_of` yields a
/// predicate's sorted, deduplicated `(subject, object)` set, `resolve`
/// renders term ids.
fn token_resource_from(
    resolve: &dyn Fn(TermId) -> Option<String>,
    predicates: &[TermId],
    args_of: &dyn Fn(TermId) -> Vec<(TermId, TermId)>,
    query: &Query,
    cfg: &SuggestConfig,
) -> Vec<Suggestion> {
    let mut out = Vec::new();

    // Token predicates appearing in the query.
    let mut token_preds: Vec<TermId> = query
        .patterns
        .iter()
        .filter_map(|p| p.p.term())
        .filter(|t| t.is_token())
        .collect();
    token_preds.sort_unstable();
    token_preds.dedup();

    for tp in token_preds {
        let token_args = args_of(tp);
        if token_args.is_empty() {
            continue;
        }
        let mut candidates: Vec<(f64, bool, TermId)> = Vec::new();
        for &rp in predicates {
            if !rp.is_resource() {
                continue;
            }
            let res_args = args_of(rp);
            let forward = sorted_overlap(&token_args, &res_args);
            // Inverted relations ('studied under' vs hasStudent) overlap
            // only with swapped arguments.
            let reversed = token_args
                .iter()
                .filter(|(a, b)| res_args.binary_search(&(*b, *a)).is_ok())
                .count();
            let (overlap, inverted) = if reversed > forward {
                (reversed, true)
            } else {
                (forward, false)
            };
            let frac = overlap as f64 / token_args.len() as f64;
            if frac >= cfg.min_overlap {
                candidates.push((frac, inverted, rp));
            }
        }
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.2.cmp(&b.2)));
        for (frac, inverted, rp) in candidates.into_iter().take(cfg.per_token) {
            out.push(Suggestion::ReplaceToken {
                token: resolve(tp).unwrap_or_else(|| "<unknown>".to_string()),
                resource: resolve(rp).unwrap_or_else(|| "<unknown>".to_string()),
                overlap: frac,
                inverted,
            });
        }
    }
    out
}

/// Reports which relaxation rules contributed to the answer set.
pub fn rule_invocation_notices(rules: &RuleSet, answers: &[Answer]) -> Vec<Suggestion> {
    let mut counts: HashMap<trinit_relax::RuleId, usize> = HashMap::new();
    for a in answers {
        for r in &a.derivation.rules {
            *counts.entry(*r).or_insert(0) += 1;
        }
    }
    let mut ids: Vec<_> = counts.keys().copied().collect();
    ids.sort_unstable();
    ids.into_iter()
        .map(|id| {
            let rule = rules.get(id);
            Suggestion::RuleInvoked {
                rule: rule.label.clone(),
                weight: rule.weight,
                structural: matches!(rule.kind, RuleKind::Inversion | RuleKind::Structural),
            }
        })
        .collect()
}

/// All suggestions for a finished query.
pub fn suggest(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    answers: &[Answer],
    cfg: &SuggestConfig,
) -> Vec<Suggestion> {
    let mut out = token_resource_suggestions(store, query, cfg);
    out.extend(rule_invocation_notices(rules, answers));
    out
}

/// Helper: true if any query pattern uses a token term anywhere.
pub fn query_uses_tokens(query: &Query) -> bool {
    query.patterns.iter().any(|p| {
        p.slots()
            .into_iter()
            .any(|s| matches!(s, QTerm::Term(t) if t.is_token()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_query::QueryBuilder;
    use trinit_xkg::XkgBuilder;

    /// Store where the token 'worked at' heavily overlaps `affiliation`.
    fn overlapping_store() -> XkgStore {
        let mut b = XkgBuilder::new();
        for (s, o) in [("a", "U1"), ("b", "U1"), ("c", "U2"), ("d", "U3")] {
            b.add_kg_resources(s, "affiliation", o);
        }
        let src = b.intern_source("d0");
        let worked = b.dict_mut().token("worked at");
        for (s, o) in [("a", "U1"), ("b", "U1"), ("c", "U2")] {
            let s = b.dict_mut().resource(s);
            let o = b.dict_mut().resource(o);
            b.add_extracted(s, worked, o, 0.8, src);
        }
        b.build()
    }

    #[test]
    fn token_predicate_suggests_resource() {
        let store = overlapping_store();
        let q = QueryBuilder::new(&store)
            .pattern_r_t_v("a", "worked at", "y")
            .build();
        let suggestions =
            token_resource_suggestions(&store, &q, &SuggestConfig::default());
        assert!(!suggestions.is_empty());
        match &suggestions[0] {
            Suggestion::ReplaceToken {
                token,
                resource,
                overlap,
                inverted,
            } => {
                assert_eq!(token, "worked at");
                assert_eq!(resource, "affiliation");
                assert!((overlap - 1.0).abs() < 1e-9, "all 3 pairs covered");
                assert!(!inverted);
            }
            other => panic!("unexpected suggestion {other:?}"),
        }
    }

    #[test]
    fn no_suggestions_for_resource_only_query() {
        let store = overlapping_store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .build();
        assert!(!query_uses_tokens(&q));
        assert!(token_resource_suggestions(&store, &q, &SuggestConfig::default()).is_empty());
    }

    #[test]
    fn threshold_filters_weak_overlap() {
        let store = overlapping_store();
        let q = QueryBuilder::new(&store)
            .pattern_r_t_v("a", "worked at", "y")
            .build();
        let none = token_resource_suggestions(
            &store,
            &q,
            &SuggestConfig {
                min_overlap: 1.01,
                per_token: 3,
            },
        );
        assert!(none.is_empty());
    }

    #[test]
    fn inverted_token_suggests_resource_with_swap() {
        // 'studied under' pairs are reversed hasStudent pairs.
        let mut b = XkgBuilder::new();
        for (adv, st) in [("A1", "S1"), ("A2", "S2"), ("A3", "S3")] {
            b.add_kg_resources(adv, "hasStudent", st);
        }
        let src = b.intern_source("d");
        let studied = b.dict_mut().token("studied under");
        for (st, adv) in [("S1", "A1"), ("S2", "A2")] {
            let s = b.dict_mut().resource(st);
            let o = b.dict_mut().resource(adv);
            b.add_extracted(s, studied, o, 0.7, src);
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_r_t_v("S1", "studied under", "y")
            .build();
        let suggestions =
            token_resource_suggestions(&store, &q, &SuggestConfig::default());
        let hit = suggestions.iter().any(|s| matches!(
            s,
            Suggestion::ReplaceToken { resource, inverted: true, .. }
                if resource == "hasStudent"
        ));
        assert!(hit, "expected inverted suggestion: {suggestions:?}");
    }

    #[test]
    fn rule_notices_from_answers() {
        use trinit_query::{Answer, Bindings, Derivation};
        use trinit_relax::{Rule, RuleProvenance, RuleSet};
        let store = overlapping_store();
        let aff = store.resource("affiliation").unwrap();
        let worked = store.token("worked at").unwrap();
        let mut rules = RuleSet::new();
        let id = rules.add(Rule::inversion(
            "inv",
            aff,
            worked,
            0.9,
            RuleProvenance::MinedInversion,
        ));
        let answer = Answer {
            key: vec![],
            bindings: Bindings::new(0),
            score: -1.0,
            derivation: Derivation {
                triples: vec![],
                rules: vec![id],
                rule_weight: 0.9,
            },
        };
        let notices = rule_invocation_notices(&rules, &[answer]);
        assert_eq!(notices.len(), 1);
        match &notices[0] {
            Suggestion::RuleInvoked { structural, .. } => assert!(*structural),
            other => panic!("unexpected {other:?}"),
        }
        assert!(notices[0].render().contains("structural"));
    }

    #[test]
    fn render_replace_token() {
        let s = Suggestion::ReplaceToken {
            token: "worked at".into(),
            resource: "affiliation".into(),
            overlap: 0.75,
            inverted: false,
        };
        let text = s.render();
        assert!(text.contains("affiliation"));
        assert!(text.contains("75%"));
    }
}
