//! Answer explanation (paper §5, Figure 6).
//!
//! "The answer explanation provides three important pieces of
//! information: (i) the KG triples that contributed to an answer, (ii)
//! the XKG triples that contributed to an answer and their provenance,
//! and (iii) the relaxation rules that were invoked to obtain an answer."

use trinit_query::{Answer, Query};
use trinit_relax::RuleSet;
use trinit_shard::ShardedStore;
use trinit_xkg::{GraphTag, Provenance, SegmentedStore, SourceId, TermId, TripleId, XkgStore};

/// What an explanation needs from the graph: term/triple rendering and
/// provenance, by (possibly global) triple id. Implemented by the
/// monolithic store, by the segmented store (ids span base then
/// delta), and by the sharded store (ids span shards then delta
/// views).
pub trait ExplainSource {
    /// Renders a term for display.
    fn render_term(&self, id: TermId) -> String;
    /// Renders a triple in `S P O` form.
    fn render_triple(&self, id: TripleId) -> String;
    /// Provenance of a triple.
    fn provenance_of(&self, id: TripleId) -> &Provenance;
    /// Resolves a source id to its document identifier.
    fn source(&self, id: SourceId) -> Option<&str>;
}

impl ExplainSource for XkgStore {
    fn render_term(&self, id: TermId) -> String {
        self.display_term(id)
    }
    fn render_triple(&self, id: TripleId) -> String {
        self.display_triple(id)
    }
    fn provenance_of(&self, id: TripleId) -> &Provenance {
        self.provenance(id)
    }
    fn source(&self, id: SourceId) -> Option<&str> {
        self.source_name(id)
    }
}

impl ExplainSource for SegmentedStore {
    fn render_term(&self, id: TermId) -> String {
        self.display_term(id)
    }
    fn render_triple(&self, id: TripleId) -> String {
        self.display_triple(id)
    }
    fn provenance_of(&self, id: TripleId) -> &Provenance {
        self.provenance(id)
    }
    fn source(&self, id: SourceId) -> Option<&str> {
        self.source_name(id)
    }
}

impl ExplainSource for ShardedStore {
    fn render_term(&self, id: TermId) -> String {
        self.display_term(id)
    }
    fn render_triple(&self, id: TripleId) -> String {
        self.display_triple(id)
    }
    fn provenance_of(&self, id: TripleId) -> &Provenance {
        self.provenance(id)
    }
    fn source(&self, id: SourceId) -> Option<&str> {
        self.source_name(id)
    }
}

/// A structured answer explanation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The projected answer rendered as `?var = value` pairs.
    pub answer_line: String,
    /// Contributing curated-KG triples.
    pub kg_triples: Vec<String>,
    /// Contributing XKG triples with confidence and source documents.
    pub xkg_triples: Vec<String>,
    /// Invoked relaxation rules with weights and provenance.
    pub rules: Vec<String>,
    /// Final (log-space) score.
    pub score: f64,
}

impl Explanation {
    /// Renders the explanation as indented text (the CLI stand-in for the
    /// paper's Figure 6 web view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("answer: {}\n", self.answer_line));
        out.push_str(&format!("score:  {:.4} (log-likelihood)\n", self.score));
        out.push_str("contributing KG triples:\n");
        if self.kg_triples.is_empty() {
            out.push_str("  (none)\n");
        }
        for t in &self.kg_triples {
            out.push_str(&format!("  {t}\n"));
        }
        out.push_str("contributing XKG triples:\n");
        if self.xkg_triples.is_empty() {
            out.push_str("  (none)\n");
        }
        for t in &self.xkg_triples {
            out.push_str(&format!("  {t}\n"));
        }
        out.push_str("invoked relaxation rules:\n");
        if self.rules.is_empty() {
            out.push_str("  (none — exact match)\n");
        }
        for r in &self.rules {
            out.push_str(&format!("  {r}\n"));
        }
        out
    }
}

/// Builds the explanation of one answer against a monolithic store.
pub fn explain(store: &XkgStore, query: &Query, rules: &RuleSet, answer: &Answer) -> Explanation {
    explain_from(store, query, rules, answer)
}

/// Builds the explanation of one answer from any [`ExplainSource`] —
/// the sharded entry point, where derivation ids are global.
pub fn explain_from(
    store: &dyn ExplainSource,
    query: &Query,
    rules: &RuleSet,
    answer: &Answer,
) -> Explanation {
    let answer_line = answer
        .key
        .iter()
        .map(|(v, t)| {
            let name = query.var_name(*v);
            match t {
                Some(id) => format!("?{name} = {}", store.render_term(*id)),
                None => format!("?{name} = (unbound)"),
            }
        })
        .collect::<Vec<_>>()
        .join(", ");

    let mut kg_triples = Vec::new();
    let mut xkg_triples = Vec::new();
    for (_, triple_id) in &answer.derivation.triples {
        let prov = store.provenance_of(*triple_id);
        let rendered = store.render_triple(*triple_id);
        match prov.graph {
            GraphTag::Kg => kg_triples.push(rendered),
            GraphTag::Xkg => {
                let sources: Vec<&str> = prov
                    .sources
                    .iter()
                    .filter_map(|s| store.source(*s))
                    .collect();
                xkg_triples.push(format!(
                    "{rendered}   [confidence {:.2}, support {}, from {}]",
                    prov.confidence,
                    prov.support,
                    if sources.is_empty() {
                        "(unknown)".to_string()
                    } else {
                        sources.join(", ")
                    }
                ));
            }
        }
    }

    let mut rule_lines = Vec::new();
    let mut seen = Vec::new();
    for rid in &answer.derivation.rules {
        if seen.contains(rid) {
            continue;
        }
        seen.push(*rid);
        let rule = rules.get(*rid);
        rule_lines.push(format!(
            "{}   [weight {:.2}, {:?}]",
            rule.label, rule.weight, rule.provenance
        ));
    }

    Explanation {
        answer_line,
        kg_triples,
        xkg_triples,
        rules: rule_lines,
        score: answer.score,
    }
}

/// Renders the internal processing steps of a query outcome — the
/// "for users interested in the details of query processing, TriniT can
/// show internal steps" feature of §5.
///
/// Reconstructed from the engine's work counters and the answers'
/// derivations: which rewritings were considered, how much sorted access
/// was performed, which relaxations actually contributed.
pub fn processing_report(
    store: &XkgStore,
    rules: &RuleSet,
    outcome: &crate::trinit::QueryOutcome,
) -> String {
    let mut out = String::new();
    out.push_str("internal processing steps\n");
    out.push_str(&format!(
        "  query: {}\n",
        outcome.query.display(store)
    ));
    out.push_str(&format!(
        "  triple patterns: {}   requested k: {}\n",
        outcome.query.patterns.len(),
        outcome.query.k
    ));
    let m = &outcome.metrics;
    out.push_str(&format!(
        "  query variants evaluated:    {}\n",
        m.rewritings_evaluated
    ));
    out.push_str(&format!(
        "  posting lists materialized:  {}\n",
        m.posting_lists_built
    ));
    out.push_str(&format!(
        "  posting-cache hits:          {}\n",
        m.posting_cache_hits
    ));
    out.push_str(&format!(
        "  session-cache hits:          {}\n",
        m.shared_cache_hits
    ));
    out.push_str(&format!(
        "  relaxations invoked:         {}\n",
        m.relaxations_opened
    ));
    out.push_str(&format!(
        "  sorted-access depth:         {} postings\n",
        m.postings_scanned
    ));
    out.push_str(&format!(
        "  join candidates tested:      {}\n",
        m.join_candidates
    ));
    out.push_str(&format!(
        "  rank-join pulls:             {}\n",
        m.pulls
    ));
    out.push_str(&format!(
        "  early threshold cutoffs:     {}\n",
        m.early_cutoffs
    ));

    // Which rules actually contributed to returned answers.
    let mut contributing: Vec<trinit_relax::RuleId> = outcome
        .answers
        .iter()
        .flat_map(|a| a.derivation.rules.iter().copied())
        .collect();
    contributing.sort_unstable();
    contributing.dedup();
    out.push_str(&format!(
        "  rules contributing to answers: {}\n",
        contributing.len()
    ));
    for id in contributing {
        let rule = rules.get(id);
        out.push_str(&format!("    [{:.2}] {}\n", rule.weight, rule.label));
    }
    let exact = outcome
        .answers
        .iter()
        .filter(|a| a.derivation.is_exact())
        .count();
    out.push_str(&format!(
        "  answers: {} total ({} exact, {} via relaxation)\n",
        outcome.answers.len(),
        exact,
        outcome.answers.len() - exact
    ));

    // Stage timing from the query's trace, when it ran instrumented.
    let trace = outcome.trace();
    if !trace.is_empty() {
        out.push_str(&format!(
            "  stage timing ({} spans recorded",
            trace.recorded()
        ));
        if trace.dropped > 0 {
            out.push_str(&format!(", {} dropped at ring capacity", trace.dropped));
        }
        out.push_str("):\n");
        for stage in trinit_obs::Stage::ALL {
            let n = trace.stage_count(stage);
            if n == 0 {
                continue;
            }
            out.push_str(&format!(
                "    {:<12} {:>5} span(s)  {:>10} ns\n",
                stage.name(),
                n,
                trace.stage_total_ns(stage)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_rules, paper_store};
    use trinit_query::{QueryBuilder, TopkConfig};

    #[test]
    fn explanation_for_user_c_answer() {
        let store = paper_store();
        let rules = paper_rules(&store);
        // Ivy League university Einstein was affiliated with (user C).
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "x")
            .pattern_v_r_r("x", "member", "IvyLeague")
            .project(&["x"])
            .build();
        let (answers, _) =
            trinit_query::exec::topk::run(&store, &q, &rules, &TopkConfig::default());
        assert!(!answers.is_empty(), "relaxation must recover Princeton");
        let e = explain(&store, &q, &rules, &answers[0]);
        assert!(e.answer_line.contains("PrincetonUniversity"));
        assert!(!e.kg_triples.is_empty(), "member triple is KG");
        assert!(!e.xkg_triples.is_empty(), "'housed in' triple is XKG");
        assert!(!e.rules.is_empty(), "rule 3 was invoked");
        let text = e.render();
        assert!(text.contains("housed in"));
        assert!(text.contains("clueweb:doc-002381"));
        assert!(text.contains("weight 0.80"));
    }

    #[test]
    fn exact_answer_has_no_rules_section() {
        let store = paper_store();
        let rules = paper_rules(&store);
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .build();
        let (answers, _) =
            trinit_query::exec::topk::run(&store, &q, &rules, &TopkConfig::default());
        let e = explain(&store, &q, &rules, &answers[0]);
        assert!(e.rules.is_empty());
        assert!(e.render().contains("exact match"));
    }

    #[test]
    fn processing_report_summarizes_work() {
        let store = paper_store();
        let rules = paper_rules(&store);
        let system = crate::Trinit::from_parts(store, rules);
        let outcome = system
            .query("AlbertEinstein affiliation ?x . ?x member IvyLeague LIMIT 5")
            .unwrap();
        let report = processing_report(system.store(), system.rules(), &outcome);
        assert!(report.contains("internal processing steps"));
        assert!(report.contains("relaxations invoked"));
        assert!(report.contains("via relaxation"));
        assert!(report.contains("housed in"), "contributing rule listed");
        assert!(report.contains("stage timing"), "trace section renders");
        assert!(report.contains("query"), "query span listed: {report}");
    }

    #[test]
    fn processing_report_omits_stage_timing_when_tracing_is_off() {
        let store = paper_store();
        let rules = paper_rules(&store);
        let mut system = crate::Trinit::from_parts(store, rules);
        system.set_obs(trinit_obs::ObsConfig::off());
        let outcome = system.query("?x bornIn Ulm").unwrap();
        let report = processing_report(system.store(), system.rules(), &outcome);
        assert!(report.contains("internal processing steps"));
        assert!(!report.contains("stage timing"));
    }

    #[test]
    fn duplicate_rules_collapse_in_explanation() {
        use trinit_query::{Answer, Bindings, Derivation};
        use trinit_relax::RuleId;
        let store = paper_store();
        let rules = paper_rules(&store);
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .build();
        let answer = Answer {
            key: vec![],
            bindings: Bindings::new(0),
            score: -1.0,
            derivation: Derivation {
                triples: vec![],
                rules: vec![RuleId(0), RuleId(0), RuleId(1)],
                rule_weight: 0.8,
            },
        };
        let e = explain(&store, &q, &rules, &answer);
        assert_eq!(e.rules.len(), 2);
    }
}
