//! Auto-completion over the XKG vocabulary.
//!
//! "User input is eased by auto-completion, guiding users towards
//! meaningful query formulations." (paper §5). Completion is
//! case-insensitive prefix search over all resources, token phrases, and
//! literals in the store's dictionary.

use trinit_xkg::{TermKind, XkgStore};

/// A completion candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The completed term text.
    pub text: String,
    /// Which kind of term it is.
    pub kind: TermKind,
}

/// A prebuilt completion index (sorted lowercase vocabulary).
#[derive(Debug)]
pub struct Completer {
    // (lowercased text, original text, kind), sorted by lowercased text.
    entries: Vec<(String, String, TermKind)>,
}

impl Completer {
    /// Builds the completer from a store's dictionary.
    pub fn build(store: &XkgStore) -> Completer {
        let mut entries: Vec<(String, String, TermKind)> = store
            .dict()
            .iter()
            .map(|(id, text)| (text.to_lowercase(), text.to_string(), id.kind()))
            .collect();
        entries.sort();
        entries.dedup();
        Completer { entries }
    }

    /// Number of indexed terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completes a prefix (case-insensitive), returning up to `limit`
    /// candidates in lexicographic order.
    pub fn complete(&self, prefix: &str, limit: usize) -> Vec<Completion> {
        let needle = prefix.to_lowercase();
        let start = self.entries.partition_point(|(low, _, _)| low < &needle);
        self.entries[start..]
            .iter()
            .take_while(|(low, _, _)| low.starts_with(&needle))
            .take(limit)
            .map(|(_, text, kind)| Completion {
                text: text.clone(),
                kind: *kind,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_store;

    #[test]
    fn completes_resources_case_insensitively() {
        let store = paper_store();
        let c = Completer::build(&store);
        let results = c.complete("albert", 10);
        assert!(results.iter().any(|r| r.text == "AlbertEinstein"));
    }

    #[test]
    fn completes_token_phrases() {
        let store = paper_store();
        let c = Completer::build(&store);
        let results = c.complete("won", 10);
        assert!(results
            .iter()
            .any(|r| r.text == "won nobel for" && r.kind == TermKind::Token));
    }

    #[test]
    fn limit_is_respected() {
        let store = paper_store();
        let c = Completer::build(&store);
        assert!(c.complete("", 5).len() <= 5);
        assert!(!c.is_empty());
    }

    #[test]
    fn no_match_returns_empty() {
        let store = paper_store();
        let c = Completer::build(&store);
        assert!(c.complete("zzzzz", 10).is_empty());
    }

    #[test]
    fn results_are_sorted() {
        let store = paper_store();
        let c = Completer::build(&store);
        let results = c.complete("", 100);
        let mut sorted = results.clone();
        sorted.sort_by_key(|a| a.text.to_lowercase());
        assert_eq!(results, sorted);
    }
}
