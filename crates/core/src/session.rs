//! Interactive sessions with user-defined relaxation rules.
//!
//! The demo lets users "define their own relaxation rules" and "supply
//! TriniT with relaxation rules invoked during query processing" (paper
//! §5, Figure 5 shows rules 3 and 4 entered in the UI). A [`Session`]
//! overlays user rules on the system rule set without mutating the
//! shared system.
//!
//! Each session also owns a bounded LRU [`SharedPostingCache`]:
//! interactive exploration (the paper's E6 workload) re-issues queries
//! over the same predicates and entity anchors, so materialized posting
//! lists are reused across consecutive queries of the session —
//! [`ExecMetrics::shared_cache_hits`](trinit_query::ExecMetrics) counts
//! the reuse. Caches are per-session, never shared between users.

use trinit_query::{Query, SharedCacheStats, SharedPostingCache};
use trinit_relax::{Rule, RuleId, RuleSet};

use crate::trinit::{Engine, QueryOutcome, Trinit};

/// Default capacity of a session's posting cache (materialized lists).
pub const SESSION_CACHE_CAPACITY: usize = 256;

/// One user's interactive session.
pub struct Session<'a> {
    system: &'a Trinit,
    rules: RuleSet,
    user_rules: usize,
    /// The cache serving a monolithic system's queries.
    posting_cache: SharedPostingCache,
    /// On a sharded system: one session-owned cache per shard (cached
    /// lists are shard-specific, so shards never share one). Empty for
    /// monolithic systems.
    shard_caches: Vec<SharedPostingCache>,
}

impl<'a> Session<'a> {
    fn with_rules(system: &'a Trinit, rules: RuleSet) -> Session<'a> {
        let shard_caches = match system.sharded_store() {
            Some(sharded) => (0..sharded.shard_count())
                .map(|_| SharedPostingCache::new(SESSION_CACHE_CAPACITY))
                .collect(),
            None => Vec::new(),
        };
        Session {
            system,
            rules,
            user_rules: 0,
            posting_cache: SharedPostingCache::new(SESSION_CACHE_CAPACITY),
            shard_caches,
        }
    }

    /// Opens a session over a system; starts with the system rule set.
    pub fn new(system: &'a Trinit) -> Session<'a> {
        let mut rules = RuleSet::new();
        for (_, rule) in system.rules().iter() {
            rules.add(rule.clone());
        }
        Session::with_rules(system, rules)
    }

    /// Opens a session that ignores the system rules (pure user rules).
    pub fn without_system_rules(system: &'a Trinit) -> Session<'a> {
        Session::with_rules(system, RuleSet::new())
    }

    /// Replaces the session posting cache(s) with ones holding
    /// `capacity` materialized lists (0 disables retention; sharded
    /// systems get `capacity` per shard). Drops cached lists and
    /// counters.
    pub fn set_posting_cache_capacity(&mut self, capacity: usize) -> &mut Self {
        self.posting_cache = SharedPostingCache::new(capacity);
        for cache in &mut self.shard_caches {
            *cache = SharedPostingCache::new(capacity);
        }
        self
    }

    /// The session's posting cache (stats, capacity, manual clearing).
    /// Serves queries on monolithic systems; on sharded systems the
    /// per-shard caches ([`Session::shard_posting_caches`]) serve
    /// instead.
    pub fn posting_cache(&self) -> &SharedPostingCache {
        &self.posting_cache
    }

    /// The session's per-shard posting caches (empty on monolithic
    /// systems).
    pub fn shard_posting_caches(&self) -> &[SharedPostingCache] {
        &self.shard_caches
    }

    /// Hit/miss/eviction/poison-recovery counters of the session
    /// posting cache(s), summed across shards on a sharded system.
    pub fn cache_stats(&self) -> SharedCacheStats {
        let mut stats = self.posting_cache.stats();
        for cache in &self.shard_caches {
            let s = cache.stats();
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.evictions += s.evictions;
            stats.poison_recoveries += s.poison_recoveries;
        }
        stats
    }

    /// Adds a user-defined rule, returning its id in this session.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        self.user_rules += 1;
        self.rules.add(rule)
    }

    /// Number of user-added rules.
    pub fn user_rule_count(&self) -> usize {
        self.user_rules
    }

    /// The session's combined rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The underlying system.
    pub fn system(&self) -> &Trinit {
        self.system
    }

    /// Parses and answers a query with the session rule set.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, trinit_query::ParseError> {
        let query = self.system.parse(text)?;
        Ok(self.run(query, Engine::IncrementalTopK))
    }

    /// The semi-naive delta question under the session rule set: which
    /// of `query`'s top-k answers use at least one triple from the
    /// system's live delta segment (the most recent un-compacted
    /// [`Trinit::ingest`] batches)? Runs one restricted query variant
    /// per triple pattern — that pattern's merge source confined to the
    /// delta — and unions the results; scores equal the same answers'
    /// scores under a full run. Returns no answers when no delta is
    /// live.
    pub fn answers_introduced_by(&self, query: Query) -> QueryOutcome {
        if self.system.sharded_store().is_some() {
            self.system.answers_introduced_by_cached(
                query,
                &self.rules,
                None,
                Some(&self.shard_caches),
            )
        } else {
            self.system.answers_introduced_by_cached(
                query,
                &self.rules,
                Some(&self.posting_cache),
                None,
            )
        }
    }

    /// Runs a compiled query with the session rule set, reusing posting
    /// lists cached by this session's earlier queries (per-shard caches
    /// on a sharded system; caches are session-isolated either way).
    pub fn run(&self, query: Query, engine: Engine) -> QueryOutcome {
        if self.system.sharded_store().is_some() {
            self.system.run_with_rules_shard_cached(
                query,
                engine,
                &self.rules,
                Some(&self.shard_caches),
                trinit_shard::SeedMode::Parallel,
            )
        } else {
            self.system
                .run_with_rules_cached(query, engine, &self.rules, Some(&self.posting_cache))
        }
    }
}

impl Drop for Session<'_> {
    /// Folds the session's lifetime cache traffic into the system
    /// [`MetricsRegistry`](trinit_obs::MetricsRegistry): session caches
    /// are private while live, but their hit/miss/eviction tallies join
    /// the process-wide snapshot once the session closes.
    fn drop(&mut self) {
        self.system
            .registry()
            .fold_cache(crate::trinit::cache_tally(self.cache_stats()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_rules, paper_store};
    use trinit_relax::RuleProvenance;

    fn system() -> Trinit {
        let store = paper_store();
        let rules = paper_rules(&store);
        Trinit::from_parts(store, rules)
    }

    #[test]
    fn session_sees_system_rules() {
        let sys = system();
        let session = Session::new(&sys);
        assert_eq!(session.rules().len(), sys.rules().len());
        assert_eq!(session.user_rule_count(), 0);
    }

    #[test]
    fn user_rule_changes_results() {
        let sys = system();
        // Without rule 2, user B's query has no answers (even with the
        // figure-4 rules 1/3/4 present).
        let outcome = Session::without_system_rules(&sys)
            .query("AlbertEinstein hasAdvisor ?x")
            .unwrap();
        assert!(outcome.answers.is_empty());

        // Adding the inversion rule in-session recovers Kleiner.
        let mut session = Session::without_system_rules(&sys);
        let q = sys.parse("AlbertEinstein hasAdvisor ?x").unwrap();
        let has_advisor = q.unknown_terms[0].0;
        let has_student = sys.store().resource("hasStudent").unwrap();
        session.add_rule(trinit_relax::Rule::inversion(
            "?x hasAdvisor ?y => ?y hasStudent ?x",
            has_advisor,
            has_student,
            1.0,
            RuleProvenance::UserDefined,
        ));
        assert_eq!(session.user_rule_count(), 1);
        let outcome = session.run(q, Engine::IncrementalTopK);
        assert_eq!(outcome.answers.len(), 1);
        let kleiner = sys.store().resource("AlfredKleiner").unwrap();
        assert_eq!(outcome.answers[0].key[0].1, Some(kleiner));
    }

    #[test]
    fn session_cache_hits_across_consecutive_queries() {
        let sys = system();
        let session = Session::new(&sys);
        // Bound-subject patterns materialize posting lists, which the
        // session cache retains across queries.
        let q = "AlbertEinstein affiliation ?x LIMIT 5";
        let first = session.query(q).unwrap();
        let stats_after_first = session.cache_stats();
        assert_eq!(stats_after_first.hits, 0, "cold cache cannot hit");
        assert!(stats_after_first.misses > 0, "first run must consult and miss");
        assert_eq!(first.metrics.shared_cache_hits, 0);

        let second = session.query(q).unwrap();
        let stats_after_second = session.cache_stats();
        assert!(stats_after_second.hits > 0, "second run reuses cached lists");
        assert_eq!(
            stats_after_second.misses, stats_after_first.misses,
            "a repeated query must not miss again"
        );
        assert!(second.metrics.shared_cache_hits > 0);
        assert_eq!(second.metrics.posting_lists_built + second.metrics.shared_cache_hits
            + second.metrics.posting_cache_hits,
            first.metrics.posting_lists_built + first.metrics.posting_cache_hits,
            "every open is served by exactly one tier");

        // And the cache never changes answers.
        assert_eq!(first.answers.len(), second.answers.len());
        for (a, b) in first.answers.iter().zip(&second.answers) {
            assert_eq!(a.key, b.key);
            assert!((a.score - b.score).abs() < 1e-12);
        }
        let uncached = sys.query(q).unwrap();
        assert_eq!(uncached.answers.len(), second.answers.len());
        for (a, b) in uncached.answers.iter().zip(&second.answers) {
            assert_eq!(a.key, b.key);
        }
    }

    #[test]
    fn session_cache_evicts_at_capacity() {
        let sys = system();
        let mut session = Session::new(&sys);
        session.set_posting_cache_capacity(1);
        // Two different materialized patterns cannot coexist in a
        // capacity-1 cache: alternating queries keep evicting.
        let qa = "AlbertEinstein affiliation ?x LIMIT 5";
        let qb = "AlfredKleiner hasStudent ?x LIMIT 5";
        session.query(qa).unwrap();
        session.query(qb).unwrap();
        session.query(qa).unwrap();
        let stats = session.cache_stats();
        assert!(stats.evictions > 0, "capacity 1 must evict: {stats:?}");
        assert!(session.posting_cache().len() <= 1);
    }

    #[test]
    fn session_caches_are_isolated_between_sessions() {
        let sys = system();
        let a = Session::new(&sys);
        let b = Session::new(&sys);
        let q = "AlbertEinstein affiliation ?x LIMIT 5";
        a.query(q).unwrap();
        a.query(q).unwrap();
        assert!(a.cache_stats().hits > 0);
        // Session b never ran anything: its cache saw no traffic at all,
        // and its first run misses (a's cached lists are invisible).
        assert_eq!(b.cache_stats(), trinit_query::SharedCacheStats::default());
        let outcome = b.query(q).unwrap();
        assert_eq!(outcome.metrics.shared_cache_hits, 0);
        assert!(b.cache_stats().misses > 0);
        assert_eq!(b.cache_stats().hits, 0);
    }

    #[test]
    fn sharded_sessions_route_and_cache_per_shard() {
        use trinit_worldgen::{CorpusConfig, KgConfig, World, WorldConfig};
        let world = World::generate(WorldConfig::tiny(11));
        let mut builder = crate::TrinitBuilder::from_world(
            &world,
            &KgConfig::default(),
            &CorpusConfig::tiny(7),
        );
        builder.options_mut().shards(3);
        let sys = builder.build();
        let session = Session::new(&sys);
        assert_eq!(session.shard_posting_caches().len(), 3);
        let q = "?x type person LIMIT 4";
        let first = session.query(q).unwrap();
        let second = session.query(q).unwrap();
        assert!(
            second.metrics.shared_cache_hits > 0,
            "repeat query must reuse session shard caches: {:?}",
            second.metrics
        );
        assert!(session.cache_stats().hits > 0);
        for (a, b) in first.answers.iter().zip(&second.answers) {
            assert_eq!(a.key, b.key);
            assert!((a.score - b.score).abs() < 1e-12);
        }
        // Session isolation: a fresh session's caches saw no traffic.
        let other = Session::new(&sys);
        assert_eq!(other.cache_stats(), trinit_query::SharedCacheStats::default());
    }

    #[test]
    fn sessions_are_isolated() {
        let sys = system();
        let mut a = Session::new(&sys);
        let b = Session::new(&sys);
        a.add_rule(trinit_relax::Rule::predicate_rewrite(
            "user",
            sys.store().resource("bornIn").unwrap(),
            sys.store().resource("diedIn").unwrap_or_else(|| {
                sys.store().resource("bornIn").unwrap()
            }),
            0.4,
            RuleProvenance::UserDefined,
        ));
        assert_eq!(a.rules().len(), b.rules().len() + 1);
    }
}
