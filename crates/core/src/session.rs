//! Interactive sessions with user-defined relaxation rules.
//!
//! The demo lets users "define their own relaxation rules" and "supply
//! TriniT with relaxation rules invoked during query processing" (paper
//! §5, Figure 5 shows rules 3 and 4 entered in the UI). A [`Session`]
//! overlays user rules on the system rule set without mutating the
//! shared system.

use trinit_query::Query;
use trinit_relax::{Rule, RuleId, RuleSet};

use crate::trinit::{Engine, QueryOutcome, Trinit};

/// One user's interactive session.
pub struct Session<'a> {
    system: &'a Trinit,
    rules: RuleSet,
    user_rules: usize,
}

impl<'a> Session<'a> {
    /// Opens a session over a system; starts with the system rule set.
    pub fn new(system: &'a Trinit) -> Session<'a> {
        let mut rules = RuleSet::new();
        for (_, rule) in system.rules().iter() {
            rules.add(rule.clone());
        }
        Session {
            system,
            rules,
            user_rules: 0,
        }
    }

    /// Opens a session that ignores the system rules (pure user rules).
    pub fn without_system_rules(system: &'a Trinit) -> Session<'a> {
        Session {
            system,
            rules: RuleSet::new(),
            user_rules: 0,
        }
    }

    /// Adds a user-defined rule, returning its id in this session.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        self.user_rules += 1;
        self.rules.add(rule)
    }

    /// Number of user-added rules.
    pub fn user_rule_count(&self) -> usize {
        self.user_rules
    }

    /// The session's combined rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The underlying system.
    pub fn system(&self) -> &Trinit {
        self.system
    }

    /// Parses and answers a query with the session rule set.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, trinit_query::ParseError> {
        let query = self.system.parse(text)?;
        Ok(self.run(query, Engine::IncrementalTopK))
    }

    /// Runs a compiled query with the session rule set.
    pub fn run(&self, query: Query, engine: Engine) -> QueryOutcome {
        self.system.run_with_rules(query, engine, &self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_rules, paper_store};
    use trinit_relax::RuleProvenance;

    fn system() -> Trinit {
        let store = paper_store();
        let rules = paper_rules(&store);
        Trinit::from_parts(store, rules)
    }

    #[test]
    fn session_sees_system_rules() {
        let sys = system();
        let session = Session::new(&sys);
        assert_eq!(session.rules().len(), sys.rules().len());
        assert_eq!(session.user_rule_count(), 0);
    }

    #[test]
    fn user_rule_changes_results() {
        let sys = system();
        // Without rule 2, user B's query has no answers (even with the
        // figure-4 rules 1/3/4 present).
        let outcome = Session::without_system_rules(&sys)
            .query("AlbertEinstein hasAdvisor ?x")
            .unwrap();
        assert!(outcome.answers.is_empty());

        // Adding the inversion rule in-session recovers Kleiner.
        let mut session = Session::without_system_rules(&sys);
        let q = sys.parse("AlbertEinstein hasAdvisor ?x").unwrap();
        let has_advisor = q.unknown_terms[0].0;
        let has_student = sys.store().resource("hasStudent").unwrap();
        session.add_rule(trinit_relax::Rule::inversion(
            "?x hasAdvisor ?y => ?y hasStudent ?x",
            has_advisor,
            has_student,
            1.0,
            RuleProvenance::UserDefined,
        ));
        assert_eq!(session.user_rule_count(), 1);
        let outcome = session.run(q, Engine::IncrementalTopK);
        assert_eq!(outcome.answers.len(), 1);
        let kleiner = sys.store().resource("AlfredKleiner").unwrap();
        assert_eq!(outcome.answers[0].key[0].1, Some(kleiner));
    }

    #[test]
    fn sessions_are_isolated() {
        let sys = system();
        let mut a = Session::new(&sys);
        let b = Session::new(&sys);
        a.add_rule(trinit_relax::Rule::predicate_rewrite(
            "user",
            sys.store().resource("bornIn").unwrap(),
            sys.store().resource("diedIn").unwrap_or_else(|| {
                sys.store().resource("bornIn").unwrap()
            }),
            0.4,
            RuleProvenance::UserDefined,
        ));
        assert_eq!(a.rules().len(), b.rules().len() + 1);
    }
}
