//! The TriniT system facade.
//!
//! [`TrinitBuilder`] assembles an extended knowledge graph from a curated
//! KG plus raw text (run through the Open IE pipeline), then mines
//! relaxation rules; the resulting [`Trinit`] system answers extended
//! triple-pattern queries with relaxation, explanation, suggestion, and
//! auto-completion — the full demo surface of the paper.

use trinit_obs::{
    now_ns, CacheTally, Counter, Gauge, MetricsRegistry, ObsConfig, QueryTrace, Stage,
    TraceRecorder,
};
use trinit_openie::{Linker, OpenIePipeline, PipelineConfig};
use trinit_query::exec::segmented::SegmentedExec;
use trinit_query::exec::sharded::{run_partitioned, PartitionedRun};
use trinit_query::exec::{exact, expand, topk};
use trinit_query::{
    Answer, AnswerCollector, BudgetTracker, Completeness, ExecError, ExecMetrics, Governor,
    Query, SharedCacheStats, SharedPostingCache, TopkConfig,
};
use trinit_relax::{
    ConditionOracle, CooccurrenceOperator, ExpandOptions, GranularityMinerConfig,
    GranularityOperator, MinerConfig, OperatorRegistry, ParaphraseGroup, ParaphraseOperator,
    RelaxationOperator, RuleSet,
};
use trinit_shard::{QueryPool, SeedMode, ShardedExecutor, ShardedStore};
use trinit_worldgen::corpus::generate_corpus;
use trinit_worldgen::{alias_catalog, project_kg, CorpusConfig, KgConfig, World};
use trinit_xkg::{GraphTag, SegmentLayout, SegmentedStore, XkgBuilder, XkgStore};

use crate::complete::{Completer, Completion};
use crate::explain::Explanation;
use crate::suggest::{suggest, SuggestConfig, Suggestion};

/// Which execution engine answers a query.
///
/// On a **sharded** system ([`BuildOptions::shards`] > 1) every variant
/// routes through the partitioned top-k path: `Exact` runs it with an
/// empty rule set (the same answer set, since top-k without rules
/// reduces to exact evaluation), and `FullExpansion` runs it with the
/// full rule set under the [`TopkConfig`] budget — its per-engine work
/// counters and any budget-sensitive answers are not comparable with
/// the monolithic expansion baseline, so engine-comparison experiments
/// should use monolithic builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Exact evaluation, no relaxation (the non-relaxing baseline).
    Exact,
    /// Full expansion of all rewritings up front (reference semantics).
    FullExpansion,
    /// The paper's incremental top-k processor (default).
    IncrementalTopK,
}

/// The result of running one query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The parsed/compiled query.
    pub query: Query,
    /// Top-k answers, best first.
    pub answers: Vec<Answer>,
    /// Work counters of the engine — for sharded systems, the aggregate
    /// over the per-shard seed runs and the cross-shard merge.
    pub metrics: ExecMetrics,
    /// Per-shard work breakdown (empty on single-store systems): shard
    /// `i`'s seed-phase run plus its share of the merge phase's posting
    /// work.
    pub shard_metrics: Vec<ExecMetrics>,
    /// What the ranking is guaranteed to be relative to the exact
    /// engine: [`Completeness::Exact`] unless a budget cutoff or an
    /// ε / θ degradation actually fired during the run. The `Exact`
    /// and `FullExpansion` engines always report `Exact` (they run to
    /// completion by construction).
    pub completeness: Completeness,
    /// Per-stage execution trace of the run: the enclosing query span,
    /// per-variant spans, per-shard seed-task spans, windowed pull and
    /// election batches, and threshold / cutoff point events. Empty when
    /// tracing is disabled ([`Trinit::set_obs`]) or the engine ran a
    /// non-traced path (`Exact` / `FullExpansion` on a frozen monolith).
    pub trace: QueryTrace,
}

impl QueryOutcome {
    /// The per-stage execution trace (see [`QueryOutcome::trace`]);
    /// serialize with [`QueryTrace::to_json`].
    pub fn trace(&self) -> &QueryTrace {
        &self.trace
    }
}

/// Statistics describing a built system (the E2 dataset table).
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Distinct curated-KG triples.
    pub kg_triples: usize,
    /// Distinct Open IE extension triples.
    pub xkg_triples: usize,
    /// Documents ingested.
    pub documents: usize,
    /// Extraction pipeline counters.
    pub ingest: trinit_openie::IngestStats,
    /// Relaxation rules available after mining.
    pub rules: usize,
}

impl BuildStats {
    /// Total distinct triples (KG + XKG strata).
    pub fn total_triples(&self) -> usize {
        self.kg_triples + self.xkg_triples
    }
}

/// Build-time options.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Run the §3 co-occurrence miner.
    pub mine_cooccurrence: bool,
    /// Co-occurrence miner configuration.
    pub miner: MinerConfig,
    /// Run the granularity miner (requires `type`/`via` predicates).
    pub mine_granularity: bool,
    /// Granularity miner configuration.
    pub granularity: GranularityMinerConfig,
    /// Name of the `type` predicate.
    pub type_predicate: String,
    /// Name of the connecting predicate for granularity rules.
    pub via_predicate: String,
    /// Paraphrase clusters to compile into rules.
    pub paraphrase_groups: Vec<ParaphraseGroup>,
    /// Open IE pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Entity-linking dominance threshold.
    pub linker_dominance: f64,
    /// Default top-k processor configuration.
    pub topk: TopkConfig,
    /// Default full-expansion options (baseline engine).
    pub expand: ExpandOptions,
    /// Number of store shards to build (1 = monolithic store). Set via
    /// [`BuildOptions::shards`].
    pub shard_count: usize,
    /// Physical layout of the frozen store segments (`Flat` by default;
    /// `Packed` trades decode work for ~3–4× fewer index bytes with
    /// bit-identical answers). Set via [`BuildOptions::layout`].
    pub segment_layout: SegmentLayout,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            mine_cooccurrence: true,
            miner: MinerConfig::default(),
            mine_granularity: true,
            granularity: GranularityMinerConfig::default(),
            type_predicate: "type".to_string(),
            via_predicate: "locatedIn".to_string(),
            paraphrase_groups: Vec::new(),
            pipeline: PipelineConfig::default(),
            linker_dominance: 0.6,
            topk: TopkConfig::default(),
            expand: ExpandOptions::default(),
            shard_count: 1,
            segment_layout: SegmentLayout::Flat,
        }
    }
}

impl BuildOptions {
    /// Selects a sharded build: the XKG is hash-partitioned by subject
    /// across `n` store shards at build time, queries route through the
    /// partitioned top-k engine, and [`Trinit::run_batch`] executes
    /// independent queries concurrently across a pool sized to the
    /// shard count. `n ≤ 1` keeps the monolithic store.
    pub fn shards(&mut self, n: usize) -> &mut Self {
        self.shard_count = n.max(1);
        self
    }

    /// Selects the physical layout the frozen base segments freeze
    /// into. [`SegmentLayout::Packed`] bit-packs the permutation key
    /// columns and quantizes stored posting weights for ~3–4× fewer
    /// index bytes; every answer (keys and scores) is bit-identical to
    /// a `Flat` build. The layout survives compaction; live-ingestion
    /// delta segments always freeze `Flat` (they are small, hot, and
    /// rebuilt on every batch). See `docs/storage.md`.
    pub fn layout(&mut self, layout: SegmentLayout) -> &mut Self {
        self.segment_layout = layout;
        self
    }
}

/// Assembles a [`Trinit`] system.
pub struct TrinitBuilder {
    kg_facts: Vec<(String, String, String, bool)>,
    documents: Vec<(String, Vec<String>)>,
    aliases: Vec<(String, String, f64)>,
    operators: Vec<Box<dyn RelaxationOperator>>,
    options: BuildOptions,
}

impl Default for TrinitBuilder {
    fn default() -> Self {
        TrinitBuilder::new()
    }
}

impl TrinitBuilder {
    /// Creates an empty builder with default options.
    pub fn new() -> TrinitBuilder {
        TrinitBuilder {
            kg_facts: Vec::new(),
            documents: Vec::new(),
            aliases: Vec::new(),
            operators: Vec::new(),
            options: BuildOptions::default(),
        }
    }

    /// Creates a builder pre-loaded from a synthetic world: the projected
    /// incomplete KG, the rendered corpus, and the alias catalog (the
    /// FACC1 stand-in).
    pub fn from_world(world: &World, kg_cfg: &KgConfig, corpus_cfg: &CorpusConfig) -> TrinitBuilder {
        let mut builder = TrinitBuilder::new();
        let projection = project_kg(world, kg_cfg);
        for f in &projection.facts {
            builder.add_kg_fact(&f.subject, &f.predicate, &f.object, f.object_is_literal);
        }
        let docs = generate_corpus(world, &projection.included, corpus_cfg);
        for d in docs {
            builder.add_document(&d.id, d.sentences);
        }
        for entry in alias_catalog(world) {
            builder.add_alias(&entry.alias, &entry.resource, entry.popularity);
        }
        builder
    }

    /// Adds one curated KG fact.
    pub fn add_kg_fact(&mut self, s: &str, p: &str, o: &str, literal_object: bool) -> &mut Self {
        self.kg_facts
            .push((s.to_string(), p.to_string(), o.to_string(), literal_object));
        self
    }

    /// Adds one raw-text document for Open IE.
    pub fn add_document(&mut self, id: &str, sentences: Vec<String>) -> &mut Self {
        self.documents.push((id.to_string(), sentences));
        self
    }

    /// Adds one entity-linking alias entry.
    pub fn add_alias(&mut self, alias: &str, resource: &str, prior: f64) -> &mut Self {
        self.aliases
            .push((alias.to_string(), resource.to_string(), prior));
        self
    }

    /// Registers a custom relaxation operator (runs after built-ins).
    pub fn add_operator(&mut self, op: Box<dyn RelaxationOperator>) -> &mut Self {
        self.operators.push(op);
        self
    }

    /// Mutable access to the build options.
    pub fn options_mut(&mut self) -> &mut BuildOptions {
        &mut self.options
    }

    /// Builds the system: loads the KG, runs Open IE over the documents,
    /// freezes the store (monolithic, or hash-partitioned into shards
    /// when [`BuildOptions::shards`] selected a sharded build), and
    /// mines the rule set.
    pub fn build(self) -> Trinit {
        let mut xkg = XkgBuilder::new();
        for (s, p, o, literal) in &self.kg_facts {
            if *literal {
                xkg.add_kg_literal(s, p, o);
            } else {
                xkg.add_kg_resources(s, p, o);
            }
        }

        let linker = Linker::new(
            self.aliases
                .iter()
                .map(|(a, r, w)| (a.clone(), r.clone(), *w)),
            self.options.linker_dominance,
        );
        let pipeline = OpenIePipeline::new(linker).with_config(self.options.pipeline.clone());
        let mut ingest = trinit_openie::IngestStats::default();
        for (id, sentences) in &self.documents {
            let stats = pipeline.ingest(id, sentences, &mut xkg);
            ingest.merge(&stats);
        }

        // Sharded builds intern everything once, then partition a clone
        // of the frozen content: the monolithic store here is transient,
        // used only for rule mining and completion indexing (both read
        // term-id spaces the shards share), and dropped before the
        // system is returned.
        let shard_count = self.options.shard_count.max(1);
        let sharded_builder = (shard_count > 1).then(|| xkg.clone());
        // A sharded build's monolith is transient (mining/completion
        // only) and freezes Flat regardless of the layout option; a
        // monolithic build's store is kept, so it freezes as configured.
        let store = match &sharded_builder {
            Some(_) => xkg.build(),
            None => xkg.build_with(self.options.segment_layout),
        };

        let mut registry = OperatorRegistry::new();
        if self.options.mine_cooccurrence {
            registry.register(Box::new(CooccurrenceOperator {
                config: self.options.miner.clone(),
            }));
        }
        if self.options.mine_granularity {
            if let (Some(type_pred), Some(via)) = (
                store.resource(&self.options.type_predicate),
                store.resource(&self.options.via_predicate),
            ) {
                registry.register(Box::new(GranularityOperator {
                    type_pred,
                    via,
                    config: self.options.granularity.clone(),
                }));
            }
        }
        if !self.options.paraphrase_groups.is_empty() {
            registry.register(Box::new(ParaphraseOperator {
                groups: self.options.paraphrase_groups.clone(),
            }));
        }
        for op in self.operators {
            registry.register(op);
        }
        let rules = registry.build_rules(&store);

        let stats = BuildStats {
            kg_triples: store.len_of(GraphTag::Kg),
            xkg_triples: store.len_of(GraphTag::Xkg),
            documents: self.documents.len(),
            ingest,
            rules: rules.len(),
        };
        let completer = Completer::build(&store);
        let backend = match sharded_builder {
            Some(builder) => {
                drop(store);
                Backend::Sharded(Box::new(ShardedStore::build_with(
                    builder,
                    shard_count,
                    self.options.segment_layout,
                )))
            }
            None => Backend::Single(Box::new(SegmentedStore::new(store))),
        };
        let trinit = Trinit {
            backend,
            rules,
            completer,
            topk: self.options.topk,
            expand: self.options.expand,
            suggest_cfg: SuggestConfig::default(),
            stats,
            posting_cache: None,
            shard_caches: None,
            registry: MetricsRegistry::new(),
        };
        trinit.refresh_gauges();
        trinit
    }
}

/// The storage/execution backend of a built system.
enum Backend {
    /// One segmented store — a frozen base plus a live-ingestion delta
    /// segment (empty until [`Trinit::ingest`] runs). While the delta
    /// is empty every engine runs directly against the frozen base;
    /// with a live delta, queries serve base ∪ delta through the
    /// partitioned pipeline (boxed: variant size balance).
    Single(Box<SegmentedStore>),
    /// Subject-hash-partitioned shards; queries route through the
    /// partitioned top-k engine ([`trinit_shard::ShardedExecutor`]).
    /// Boxed like `Single`: the delta bookkeeping makes the store wide.
    Sharded(Box<ShardedStore>),
}

/// A built TriniT system: frozen XKG (monolithic or sharded), mined
/// rules, and query surface.
pub struct Trinit {
    backend: Backend,
    rules: RuleSet,
    completer: Completer,
    topk: TopkConfig,
    expand: ExpandOptions,
    suggest_cfg: SuggestConfig,
    stats: BuildStats,
    /// Optional store-level posting cache shared across every query
    /// answered through this system (see [`Trinit::enable_posting_cache`]).
    posting_cache: Option<SharedPostingCache>,
    /// The sharded counterpart: one cache per shard (cached lists hold
    /// one shard's entries, so shards must never share a cache).
    shard_caches: Option<Vec<SharedPostingCache>>,
    /// Process-wide metrics: query/answer/completeness counters, store
    /// gauges, latency histograms, and the cache tally dropped sessions
    /// fold in. Shared by every query answered through this system.
    registry: MetricsRegistry,
}

/// A [`SharedCacheStats`] reading as the registry's tally currency.
pub(crate) fn cache_tally(stats: SharedCacheStats) -> CacheTally {
    CacheTally {
        hits: stats.hits as u64,
        misses: stats.misses as u64,
        evictions: stats.evictions as u64,
        poison_recoveries: stats.poison_recoveries as u64,
    }
}

impl Trinit {
    /// Wraps an already-built store and rule set (used by fixtures,
    /// evaluation ablations, and tests).
    pub fn from_parts(store: XkgStore, rules: RuleSet) -> Trinit {
        let completer = Completer::build(&store);
        let stats = BuildStats {
            kg_triples: store.len_of(GraphTag::Kg),
            xkg_triples: store.len_of(GraphTag::Xkg),
            documents: 0,
            ingest: Default::default(),
            rules: rules.len(),
        };
        let trinit = Trinit {
            backend: Backend::Single(Box::new(SegmentedStore::new(store))),
            rules,
            completer,
            topk: TopkConfig::default(),
            expand: ExpandOptions::default(),
            suggest_cfg: SuggestConfig::default(),
            stats,
            posting_cache: None,
            shard_caches: None,
            registry: MetricsRegistry::new(),
        };
        trinit.refresh_gauges();
        trinit
    }

    /// Wraps an already-built sharded store and rule set.
    pub fn from_sharded_parts(store: ShardedStore, rules: RuleSet) -> Trinit {
        let completer = Completer::build(store.shard(0));
        let stats = BuildStats {
            kg_triples: store.len_of(GraphTag::Kg),
            xkg_triples: store.len_of(GraphTag::Xkg),
            documents: 0,
            ingest: Default::default(),
            rules: rules.len(),
        };
        let trinit = Trinit {
            backend: Backend::Sharded(Box::new(store)),
            rules,
            completer,
            topk: TopkConfig::default(),
            expand: ExpandOptions::default(),
            suggest_cfg: SuggestConfig::default(),
            stats,
            posting_cache: None,
            shard_caches: None,
            registry: MetricsRegistry::new(),
        };
        trinit.refresh_gauges();
        trinit
    }

    /// The vocabulary store: the monolith's base (or its delta view
    /// while an ingested delta is live — a superset dictionary with
    /// identical ids for shared terms), or the equivalent for a sharded
    /// system. Every *dictionary-level* operation through this
    /// reference (parsing, term lookup and display, completion) is
    /// exact; per-triple operations (`triple`, `provenance`, `lookup`)
    /// see only one slice — resolve those through
    /// [`Trinit::sharded_store`] / [`Trinit::segmented_store`] instead.
    pub fn store(&self) -> &XkgStore {
        match &self.backend {
            Backend::Single(seg) => seg.vocab(),
            Backend::Sharded(sharded) => sharded.vocab(),
        }
    }

    /// The segmented (base + delta) store of a monolithic system.
    pub fn segmented_store(&self) -> Option<&SegmentedStore> {
        match &self.backend {
            Backend::Single(seg) => Some(seg),
            Backend::Sharded(_) => None,
        }
    }

    /// The sharded store backing this system, if it was built with
    /// [`BuildOptions::shards`] > 1.
    pub fn sharded_store(&self) -> Option<&ShardedStore> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(sharded) => Some(sharded),
        }
    }

    /// The store generation: bumped by every [`Trinit::ingest`] and
    /// [`Trinit::compact`]. Store-level posting caches stamp their
    /// entries with this and drop them when it moves.
    pub fn generation(&self) -> u64 {
        match &self.backend {
            Backend::Single(seg) => seg.generation(),
            Backend::Sharded(sharded) => sharded.generation(),
        }
    }

    /// True if an ingested, not-yet-compacted delta segment is live.
    pub fn has_delta(&self) -> bool {
        match &self.backend {
            Backend::Single(seg) => seg.delta_view().is_some(),
            Backend::Sharded(sharded) => sharded.has_delta(),
        }
    }

    /// Ingests a batch of triples into the live delta segment: `fill`
    /// appends into a builder whose dictionary and source table extend
    /// the current vocabulary, and subsequent queries serve base ∪
    /// delta with scores identical to a from-scratch rebuild. Returns
    /// the number of *new* triples appended; re-observations of frozen
    /// triples are queued as pending provenance absorbs applied at the
    /// next [`Trinit::compact`] (until then the base serves them with
    /// their pre-ingest weight).
    pub fn ingest(&mut self, fill: impl FnOnce(&mut XkgBuilder)) -> usize {
        let (appended, ingest_ns) = match &mut self.backend {
            Backend::Single(seg) => (seg.ingest(fill), seg.last_ingest_ns()),
            Backend::Sharded(sharded) => (sharded.ingest(fill), sharded.last_ingest_ns()),
        };
        self.refresh_strata_stats();
        self.registry.incr(Counter::IngestBatches);
        self.registry
            .add(Counter::IngestedTriples, appended as u64);
        self.registry.record_stage(Stage::Ingest, ingest_ns);
        self.refresh_gauges();
        appended
    }

    /// Re-freezes the delta into the base: triples, pending provenance
    /// absorbs, and fresh terms merge into rebuilt sorted strata, and
    /// the delta empties. Answers are identical before and after; only
    /// the serving topology (and triple-id assignment) changes.
    pub fn compact(&mut self) {
        let compact_ns = match &mut self.backend {
            Backend::Single(seg) => {
                seg.compact();
                seg.last_compact_ns()
            }
            Backend::Sharded(sharded) => {
                sharded.compact();
                sharded.last_compact_ns()
            }
        };
        self.refresh_strata_stats();
        self.registry.incr(Counter::Compactions);
        self.registry.record_stage(Stage::Compact, compact_ns);
        self.refresh_gauges();
    }

    /// Re-derives the per-stratum triple counts after a mutation.
    fn refresh_strata_stats(&mut self) {
        let (kg, xkg) = match &self.backend {
            Backend::Single(seg) => (seg.len_of(GraphTag::Kg), seg.len_of(GraphTag::Xkg)),
            Backend::Sharded(s) => (s.len_of(GraphTag::Kg), s.len_of(GraphTag::Xkg)),
        };
        self.stats.kg_triples = kg;
        self.stats.xkg_triples = xkg;
    }

    /// Number of store shards (1 for a monolithic system).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 1,
            Backend::Sharded(sharded) => sharded.shard_count(),
        }
    }

    /// The system rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Build statistics (dataset table of experiment E2).
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The default top-k configuration.
    pub fn topk_config(&self) -> &TopkConfig {
        &self.topk
    }

    /// The process-wide metrics registry: query/answer/completeness
    /// counters, store gauges, per-stage latency histograms, and the
    /// cache tally dropped [`Session`](crate::Session)s fold in.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Replaces the observability configuration queries run with:
    /// [`ObsConfig::off`] disables span collection entirely (every
    /// record site reduces to one branch and the clock is never read);
    /// the default traces each query into a bounded ring.
    pub fn set_obs(&mut self, obs: ObsConfig) -> &mut Self {
        self.topk.obs = obs;
        self
    }

    /// Serializes the registry to JSON: counters, gauges, quantile
    /// summaries of the wall/stage histograms, and the cache tally —
    /// sessions folded at drop plus the *live* system-level posting
    /// caches (never double-counted: system caches fold nothing in).
    pub fn metrics_snapshot(&self) -> String {
        let mut live = CacheTally::default();
        if let Some(cache) = &self.posting_cache {
            live.add(cache_tally(cache.stats()));
        }
        if let Some(caches) = &self.shard_caches {
            for cache in caches {
                live.add(cache_tally(cache.stats()));
            }
        }
        self.registry.snapshot(live)
    }

    /// Folds one finished query into the registry: counters, the trace's
    /// per-stage histograms, and (when `wall_start` is a
    /// [`trinit_obs::now_ns`] reading) the query-wall histogram. Batch
    /// paths pass `None` — a shared batch start would inflate per-query
    /// wall quantiles.
    fn observe_outcome(&self, outcome: &QueryOutcome, wall_start: Option<u64>) {
        self.registry.incr(Counter::Queries);
        self.registry
            .add(Counter::Answers, outcome.answers.len() as u64);
        self.registry.incr(match outcome.completeness {
            Completeness::Exact => Counter::CompletenessExact,
            Completeness::Approx { .. } => Counter::CompletenessApprox,
            Completeness::Truncated { .. } => Counter::CompletenessTruncated,
        });
        if let Some(start) = wall_start {
            self.registry
                .record_query_wall(now_ns().saturating_sub(start));
        }
        self.registry.record_trace(&outcome.trace);
    }

    /// Re-reads the store gauges after a build or mutation
    /// (ingest/compact): generation, triple counts, and the exact
    /// storage-byte accounting (index bytes across every live segment,
    /// and total bytes per triple).
    fn refresh_gauges(&self) {
        let (generation, delta, total) = match &self.backend {
            Backend::Single(seg) => (seg.generation(), seg.delta_len(), seg.len()),
            Backend::Sharded(s) => (s.generation(), s.delta_len(), s.len()),
        };
        self.registry.set_gauge(Gauge::StoreGeneration, generation);
        self.registry.set_gauge(Gauge::DeltaTriples, delta as u64);
        self.registry.set_gauge(Gauge::StoreTriples, total as u64);
        let mut index_bytes = 0usize;
        let mut total_bytes = 0usize;
        let mut tally = |s: &XkgStore| {
            let b = s.storage_bytes();
            index_bytes += b.index_bytes();
            total_bytes += b.total();
        };
        match &self.backend {
            Backend::Single(seg) => {
                tally(seg.base());
                if let Some(view) = seg.delta_view() {
                    tally(view);
                }
            }
            Backend::Sharded(s) => {
                for shard in s.shards() {
                    tally(shard);
                }
                for (view, _) in s.delta_slices() {
                    tally(view);
                }
            }
        }
        let bytes_per_triple = if total > 0 {
            (total_bytes as f64 / total as f64).round() as u64
        } else {
            0
        };
        self.registry.set_gauge(Gauge::IndexBytes, index_bytes as u64);
        self.registry.set_gauge(Gauge::BytesPerTriple, bytes_per_triple);
    }

    /// The rule set an engine variant executes with on the sharded
    /// path: `Exact` runs the partitioned engine with no rules (top-k
    /// without rules reduces to exact evaluation); the relaxing engines
    /// use `rules` as given. The single mapping the batch schedulers
    /// and per-query sharded execution share — `scratch` hosts the
    /// empty set for the `Exact` case.
    fn engine_rules<'s>(
        engine: Engine,
        rules: &'s RuleSet,
        scratch: &'s mut Option<RuleSet>,
    ) -> &'s RuleSet {
        match engine {
            Engine::Exact => scratch.insert(RuleSet::new()),
            Engine::FullExpansion | Engine::IncrementalTopK => rules,
        }
    }

    /// Enables the system-level posting cache: a bounded LRU of
    /// materialized posting lists shared across *every* query answered
    /// through this system. Sessions carry their own cache (see
    /// [`crate::Session`]); enable this tier when one system serves many
    /// queries directly. On a sharded system this provisions one cache
    /// of `capacity` lists *per shard*. Returns `self` for chaining.
    pub fn enable_posting_cache(&mut self, capacity: usize) -> &mut Self {
        match &self.backend {
            Backend::Single(_) => self.posting_cache = Some(SharedPostingCache::new(capacity)),
            Backend::Sharded(sharded) => {
                self.shard_caches = Some(
                    (0..sharded.shard_count())
                        .map(|_| SharedPostingCache::new(capacity))
                        .collect(),
                );
            }
        }
        self
    }

    /// The system-level posting cache, if enabled (monolithic systems).
    pub fn posting_cache(&self) -> Option<&SharedPostingCache> {
        self.posting_cache.as_ref()
    }

    /// The system-level per-shard posting caches, if enabled (sharded
    /// systems).
    pub fn shard_posting_caches(&self) -> Option<&[SharedPostingCache]> {
        self.shard_caches.as_deref()
    }

    /// Parses a query string against this system's vocabulary.
    pub fn parse(&self, text: &str) -> Result<Query, trinit_query::ParseError> {
        trinit_query::parse(self.store(), text)
    }

    /// Parses and answers a query with the default engine (incremental
    /// top-k) and the system rule set.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, trinit_query::ParseError> {
        let query = self.parse(text)?;
        Ok(self.run(query, Engine::IncrementalTopK))
    }

    /// Runs a compiled query with a chosen engine and the system rules.
    pub fn run(&self, query: Query, engine: Engine) -> QueryOutcome {
        self.run_with_rules(query, engine, &self.rules)
    }

    /// Runs a compiled query with a caller-supplied rule set (sessions
    /// with user-defined rules, evaluation ablations). Consults the
    /// system-level posting cache if one was enabled.
    pub fn run_with_rules(&self, query: Query, engine: Engine, rules: &RuleSet) -> QueryOutcome {
        self.run_with_rules_cached(query, engine, rules, self.posting_cache.as_ref())
    }

    /// Runs a compiled query with a caller-supplied rule set and an
    /// explicit store-level posting cache ([`Session`]s pass their own,
    /// keeping cached lists session-isolated). On a sharded system the
    /// single cache does not apply (cached lists are shard-specific);
    /// sharded sessions route per-shard caches through
    /// [`Trinit::run_with_rules_shard_cached`].
    ///
    /// [`Session`]: crate::Session
    pub fn run_with_rules_cached(
        &self,
        query: Query,
        engine: Engine,
        rules: &RuleSet,
        cache: Option<&SharedPostingCache>,
    ) -> QueryOutcome {
        let seg = match &self.backend {
            Backend::Single(seg) => seg,
            Backend::Sharded(_) => {
                return self.run_with_rules_shard_cached(
                    query,
                    engine,
                    rules,
                    self.shard_caches.as_deref(),
                    SeedMode::Parallel,
                )
            }
        };
        let wall_start = now_ns();
        // Cached posting lists embed store-generation-specific scaling;
        // a stale cache is dropped wholesale before serving.
        if let Some(cache) = cache {
            cache.ensure_generation(seg.generation());
        }
        if seg.delta_view().is_some() {
            let outcome = self.run_segmented(seg, query, engine, rules, cache);
            self.observe_outcome(&outcome, Some(wall_start));
            return outcome;
        }
        let store = seg.base();
        let (answers, metrics, completeness, trace) = match engine {
            Engine::Exact => {
                let mut metrics = ExecMetrics::default();
                let all = exact::evaluate(
                    store,
                    &query,
                    &query.patterns,
                    &[],
                    1.0,
                    &mut metrics,
                );
                let mut collector = AnswerCollector::new();
                for a in all {
                    collector.offer(a);
                }
                (
                    collector.into_top_k(query.k),
                    metrics,
                    Completeness::Exact,
                    QueryTrace::default(),
                )
            }
            Engine::FullExpansion => {
                let (answers, metrics) = expand::run(store, &query, rules, &self.expand);
                (answers, metrics, Completeness::Exact, QueryTrace::default())
            }
            Engine::IncrementalTopK => {
                let run = topk::run_governed(store, &query, rules, &self.topk, cache);
                (run.answers, run.metrics, run.completeness, run.trace)
            }
        };
        let outcome = QueryOutcome {
            query,
            answers,
            metrics,
            shard_metrics: Vec::new(),
            completeness,
            trace,
        };
        self.observe_outcome(&outcome, Some(wall_start));
        outcome
    }

    /// One partitioned run over a monolithic system's live segments
    /// (base + delta view), optionally restricting one query pattern to
    /// the delta slice. The caller owns the budget tracker so
    /// multi-run unions share one budget.
    #[allow(clippy::too_many_arguments)]
    fn run_segmented_once(
        &self,
        seg: &SegmentedStore,
        query: &Query,
        rules: &RuleSet,
        cache: Option<&SharedPostingCache>,
        tracker: &BudgetTracker,
        restrict: Option<usize>,
        recorder: &mut TraceRecorder,
    ) -> PartitionedRun {
        let delta = seg
            .delta_view()
            .expect("segmented execution requires a live delta");
        let base = seg.base();
        let slices = [base, delta];
        let offsets = [0u32, base.len() as u32];
        let exec = SegmentedExec::new(&slices, &offsets);
        run_partitioned(
            &slices,
            &offsets,
            &exec,
            &exec,
            Some(&exec as &dyn ConditionOracle),
            query,
            rules,
            &self.topk,
            // The store-level cache holds frozen-base lists; the delta
            // slice (rebuilt every ingest) runs uncached.
            cache.map(std::slice::from_ref),
            Vec::new(),
            Governor::primary(tracker),
            restrict.map(|j| (j, 1..2)),
            recorder,
        )
    }

    /// Answers a query over a monolithic system with a live delta: the
    /// base and the delta view are two slices of the partitioned
    /// pipeline, normalized over the union's totals — answers (keys
    /// *and* scores) equal a from-scratch rebuild's. As on the sharded
    /// path, every engine routes through the partitioned top-k
    /// processor: `Exact` runs it with an empty rule set,
    /// `FullExpansion` with the full set under the [`TopkConfig`]
    /// budget.
    fn run_segmented(
        &self,
        seg: &SegmentedStore,
        query: Query,
        engine: Engine,
        rules: &RuleSet,
        cache: Option<&SharedPostingCache>,
    ) -> QueryOutcome {
        let mut scratch = None;
        let rules = Self::engine_rules(engine, rules, &mut scratch);
        let tracker = BudgetTracker::new(&self.topk);
        let mut recorder = self.topk.obs.recorder();
        let query_start = recorder.start();
        let run =
            self.run_segmented_once(seg, &query, rules, cache, &tracker, None, &mut recorder);
        recorder.record(Stage::Query, run.answers.len() as u32, query_start);
        QueryOutcome {
            query,
            answers: run.answers,
            metrics: run.metrics,
            shard_metrics: Vec::new(),
            completeness: run.completeness,
            trace: recorder.finish(),
        }
    }

    /// The semi-naive delta question: which of `query`'s top-k answers
    /// use at least one triple from the live delta segment? Runs one
    /// restricted variant per query pattern — pattern `j`'s merge
    /// source confined to the delta slices, every other pattern reading
    /// the full base ∪ delta union — and unions the results (an answer
    /// joining two fresh triples surfaces in two variants; the
    /// collector keeps one). Scores equal the same answers' scores
    /// under a full run. Returns no answers when no delta is live —
    /// an empty batch introduces nothing.
    ///
    /// Pre-existing answers whose scores merely *changed* because the
    /// delta shifted the normalization totals are not reported; this
    /// surfaces answers with fresh evidence, the re-query–vs–rebuild
    /// trade the `e11_ingest` benchmark measures.
    pub fn answers_introduced_by(&self, query: Query) -> QueryOutcome {
        self.answers_introduced_by_cached(
            query,
            &self.rules,
            self.posting_cache.as_ref(),
            self.shard_caches.as_deref(),
        )
    }

    /// [`Trinit::answers_introduced_by`] with a caller-supplied rule
    /// set and caller-owned posting caches ([`Session`]s pass their
    /// session-isolated caches and combined rules).
    ///
    /// [`Session`]: crate::Session
    pub fn answers_introduced_by_cached(
        &self,
        query: Query,
        rules: &RuleSet,
        mono_cache: Option<&SharedPostingCache>,
        shard_caches: Option<&[SharedPostingCache]>,
    ) -> QueryOutcome {
        let wall_start = now_ns();
        let tracker = BudgetTracker::new(&self.topk);
        let mut collector = AnswerCollector::new();
        let mut metrics = ExecMetrics::default();
        let mut shard_metrics: Vec<ExecMetrics> = Vec::new();
        let mut recorder = self.topk.obs.recorder();
        let query_start = recorder.start();
        match &self.backend {
            Backend::Single(seg) => {
                if seg.delta_view().is_none() {
                    let outcome = QueryOutcome {
                        query,
                        answers: Vec::new(),
                        metrics,
                        shard_metrics,
                        completeness: Completeness::Exact,
                        trace: recorder.finish(),
                    };
                    self.observe_outcome(&outcome, Some(wall_start));
                    return outcome;
                }
                if let Some(cache) = mono_cache {
                    cache.ensure_generation(seg.generation());
                }
                for j in 0..query.patterns.len() {
                    let run = self.run_segmented_once(
                        seg,
                        &query,
                        rules,
                        mono_cache,
                        &tracker,
                        Some(j),
                        &mut recorder,
                    );
                    metrics.merge(&run.metrics);
                    for a in run.answers {
                        collector.offer(a);
                    }
                }
            }
            Backend::Sharded(sharded) => {
                if !sharded.has_delta() {
                    let outcome = QueryOutcome {
                        query,
                        answers: Vec::new(),
                        metrics,
                        shard_metrics,
                        completeness: Completeness::Exact,
                        trace: recorder.finish(),
                    };
                    self.observe_outcome(&outcome, Some(wall_start));
                    return outcome;
                }
                if let Some(caches) = shard_caches {
                    for cache in caches {
                        cache.ensure_generation(sharded.generation());
                    }
                }
                let mut executor = ShardedExecutor::new(sharded);
                if let Some(caches) = shard_caches {
                    executor = executor.with_caches(caches);
                }
                for j in 0..query.patterns.len() {
                    let run = executor.run_delta_restricted(&query, rules, &self.topk, j, &tracker);
                    metrics.merge(&run.metrics);
                    if shard_metrics.len() < run.per_shard.len() {
                        shard_metrics.resize(run.per_shard.len(), ExecMetrics::default());
                    }
                    for (acc, m) in shard_metrics.iter_mut().zip(&run.per_shard) {
                        acc.merge(m);
                    }
                    // The restricted run finished its own recorder;
                    // replay its spans so the whole delta pass surfaces
                    // as one trace on the outcome.
                    for span in &run.trace.spans {
                        recorder.record_span(*span);
                    }
                    for a in run.answers {
                        collector.offer(a);
                    }
                }
            }
        }
        let answers = collector.into_top_k(query.k);
        let completeness = tracker.completeness(&answers);
        recorder.record(Stage::Query, answers.len() as u32, query_start);
        let outcome = QueryOutcome {
            query,
            answers,
            metrics,
            shard_metrics,
            completeness,
            trace: recorder.finish(),
        };
        self.observe_outcome(&outcome, Some(wall_start));
        outcome
    }

    /// Runs a compiled query over the sharded backend with caller-owned
    /// per-shard posting caches (sharded [`Session`]s pass their own set,
    /// keeping cached lists session-isolated).
    ///
    /// Every engine routes through the partitioned top-k path on a
    /// sharded system: `Exact` executes it with an empty rule set (no
    /// relaxation — the same answer set exact evaluation produces), and
    /// `FullExpansion` executes it with the full rule set (the engines
    /// are property-tested answer-equal under equivalent rule budgets;
    /// the sharded path uses the [`TopkConfig`] budget).
    ///
    /// # Panics
    ///
    /// Panics if this system was not built with shards.
    ///
    /// [`Session`]: crate::Session
    pub fn run_with_rules_shard_cached(
        &self,
        query: Query,
        engine: Engine,
        rules: &RuleSet,
        caches: Option<&[SharedPostingCache]>,
        seed: SeedMode,
    ) -> QueryOutcome {
        let Backend::Sharded(sharded) = &self.backend else {
            panic!("run_with_rules_shard_cached requires a sharded system");
        };
        let mut executor = ShardedExecutor::new(sharded);
        if let Some(caches) = caches {
            // Cached posting lists embed generation-specific scaling;
            // stale caches are dropped wholesale before serving.
            for cache in caches {
                cache.ensure_generation(sharded.generation());
            }
            executor = executor.with_caches(caches);
        }
        let mut scratch = None;
        let rules = Self::engine_rules(engine, rules, &mut scratch);
        let wall_start = now_ns();
        let run = executor.run(&query, rules, &self.topk, seed);
        let outcome = QueryOutcome {
            query,
            answers: run.answers,
            metrics: run.metrics,
            shard_metrics: run.per_shard,
            completeness: run.completeness,
            trace: run.trace,
        };
        self.observe_outcome(&outcome, Some(wall_start));
        outcome
    }

    /// Executes a batch of independent queries concurrently and returns
    /// their outcomes in input order.
    ///
    /// On a sharded system the scheduling adapts to where the
    /// parallelism budget actually goes. A batch with at least as many
    /// queries as workers keeps every worker busy on whole queries, so
    /// it runs through the fixed pool with the seed phase skipped — the
    /// throughput path; spending per-shard seed work there buys no
    /// latency, it only doubles the work. A batch *smaller* than the
    /// worker set is exactly where workers would otherwise idle, so it
    /// routes through the **work-stealing batch scheduler**
    /// ([`Trinit::run_batch_stealing`]): the unit of scheduling becomes
    /// one per-shard *seed task*, idle workers lift the remaining seed
    /// work of in-flight queries, and each query's merge starts the
    /// moment its own seeds finish, with a collector pre-loaded from
    /// them ([`ExecMetrics::seed_steals`] reports the stolen tasks per
    /// query). Monolithic systems use a fixed pool over the available
    /// hardware parallelism (whole queries are their only unit of
    /// work). Every mode returns identical answers.
    ///
    /// Worker panics are isolated per query: a query whose execution
    /// panicked yields [`ExecError::WorkerPanicked`] in its slot while
    /// every other query in the batch completes normally — a batch
    /// never aborts the process.
    pub fn run_batch(
        &self,
        queries: Vec<Query>,
        engine: Engine,
    ) -> Vec<Result<QueryOutcome, ExecError>> {
        match &self.backend {
            Backend::Sharded(sharded) => {
                let workers = sharded.shard_count();
                if queries.len() < workers {
                    self.run_batch_stealing(queries, engine, workers)
                } else {
                    self.run_batch_with_workers(queries, engine, workers)
                }
            }
            Backend::Single(_) => {
                let workers = std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1);
                self.run_batch_with_workers(queries, engine, workers)
            }
        }
    }

    /// Executes a batch through the work-stealing seed-task scheduler
    /// with an explicit worker count (see [`Trinit::run_batch`]).
    /// Answers are identical to every other batch mode; only the work
    /// placement differs. Monolithic systems have no per-shard seed
    /// tasks to steal and fall back to the fixed pool.
    pub fn run_batch_stealing(
        &self,
        queries: Vec<Query>,
        engine: Engine,
        workers: usize,
    ) -> Vec<Result<QueryOutcome, ExecError>> {
        let Backend::Sharded(sharded) = &self.backend else {
            return self.run_batch_with_workers(queries, engine, workers);
        };
        let mut executor = ShardedExecutor::new(sharded);
        if let Some(caches) = self.shard_caches.as_deref() {
            for cache in caches {
                cache.ensure_generation(sharded.generation());
            }
            executor = executor.with_caches(caches);
        }
        let mut scratch = None;
        let rules = Self::engine_rules(engine, &self.rules, &mut scratch);
        let runs = executor.run_batch_stealing_observed(
            &queries,
            rules,
            &self.topk,
            workers,
            Some(&self.registry),
        );
        queries
            .into_iter()
            .zip(runs)
            .map(|(query, run)| match run {
                Ok(run) => {
                    let outcome = QueryOutcome {
                        query,
                        answers: run.answers,
                        metrics: run.metrics,
                        shard_metrics: run.per_shard,
                        completeness: run.completeness,
                        trace: run.trace,
                    };
                    // Batch wall clocks overlap across queries; only the
                    // per-stage spans and counters are registered here.
                    self.observe_outcome(&outcome, None);
                    Ok(outcome)
                }
                Err(err) => {
                    self.registry.incr(Counter::QueryFailures);
                    Err(err)
                }
            })
            .collect()
    }

    /// [`Trinit::run_batch`] with an explicit worker count (benchmarks
    /// pin the pool to the shard count to read scaling curves; servers
    /// may cap it below the hardware parallelism).
    pub fn run_batch_with_workers(
        &self,
        queries: Vec<Query>,
        engine: Engine,
        workers: usize,
    ) -> Vec<Result<QueryOutcome, ExecError>> {
        let pool = QueryPool::new(workers);
        let results = match &self.backend {
            Backend::Single(_) => pool.try_execute(queries, |q| self.run(q, engine)),
            Backend::Sharded(_) => pool.try_execute(queries, |q| {
                self.run_with_rules_shard_cached(
                    q,
                    engine,
                    &self.rules,
                    self.shard_caches.as_deref(),
                    SeedMode::Off,
                )
            }),
        };
        // Successful slots were observed by the per-query paths above;
        // panicked slots only surface here.
        for result in &results {
            if result.is_err() {
                self.registry.incr(Counter::QueryFailures);
            }
        }
        results
    }

    /// Explains one answer of an outcome (paper §5, Figure 6). On a
    /// sharded system, derivation triple ids resolve through the
    /// sharded store's global id space.
    pub fn explain(&self, outcome: &QueryOutcome, answer_idx: usize) -> Option<Explanation> {
        let answer = outcome.answers.get(answer_idx)?;
        Some(match &self.backend {
            // The segmented store resolves global (base-then-delta)
            // derivation ids whether or not a delta is live.
            Backend::Single(seg) => {
                crate::explain::explain_from(seg.as_ref(), &outcome.query, &self.rules, answer)
            }
            Backend::Sharded(sharded) => {
                crate::explain::explain_from(sharded.as_ref(), &outcome.query, &self.rules, answer)
            }
        })
    }

    /// Renders the internal processing steps of an outcome (paper §5:
    /// "TriniT can show internal steps"). Rendering is dictionary-level,
    /// so [`Trinit::store`] serves both backends.
    pub fn processing_report(&self, outcome: &QueryOutcome) -> String {
        crate::explain::processing_report(self.store(), &self.rules, outcome)
    }

    /// Suggestions for a finished query (paper §5). Sharded systems
    /// aggregate predicate argument sets across every shard. Computed
    /// over the frozen base; triples still in a live delta contribute
    /// after the next [`Trinit::compact`].
    pub fn suggest(&self, outcome: &QueryOutcome) -> Vec<Suggestion> {
        match &self.backend {
            Backend::Single(seg) => suggest(
                seg.base(),
                &outcome.query,
                &self.rules,
                &outcome.answers,
                &self.suggest_cfg,
            ),
            Backend::Sharded(sharded) => crate::suggest::suggest_sharded(
                sharded,
                &outcome.query,
                &self.rules,
                &outcome.answers,
                &self.suggest_cfg,
            ),
        }
    }

    /// Auto-completes a term prefix (paper §5).
    pub fn complete(&self, prefix: &str, limit: usize) -> Vec<Completion> {
        self.completer.complete(prefix, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_worldgen::WorldConfig;

    fn tiny_system() -> Trinit {
        let world = World::generate(WorldConfig::tiny(11));
        TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(7)).build()
    }

    #[test]
    fn end_to_end_build_has_both_strata() {
        let sys = tiny_system();
        let stats = sys.stats();
        assert!(stats.kg_triples > 0, "KG loaded");
        assert!(stats.xkg_triples > 0, "Open IE produced extension triples");
        assert!(stats.rules > 0, "miner produced rules");
        assert!(stats.ingest.kept > 0);
        assert_eq!(stats.total_triples(), stats.kg_triples + stats.xkg_triples);
    }

    #[test]
    fn query_round_trip() {
        let sys = tiny_system();
        let outcome = sys.query("?x type person LIMIT 3").unwrap();
        assert!(!outcome.answers.is_empty());
        assert!(outcome.answers.len() <= 3);
    }

    #[test]
    fn engines_agree_on_exact_queries() {
        let sys = tiny_system();
        let q1 = sys.parse("?x type university LIMIT 100").unwrap();
        let q2 = sys.parse("?x type university LIMIT 100").unwrap();
        let exact = sys.run(q1, Engine::Exact);
        let topk = sys.run(q2, Engine::IncrementalTopK);
        // type-triples admit no relaxation in the mined rule set targeted
        // at them necessarily, but exact answers must be a subset.
        assert!(topk.answers.len() >= exact.answers.len());
        let exact_keys: Vec<_> = exact.answers.iter().map(|a| &a.key).collect();
        for k in exact_keys {
            assert!(topk.answers.iter().any(|a| &a.key == k));
        }
    }

    #[test]
    fn completion_over_built_vocabulary() {
        let sys = tiny_system();
        assert!(!sys.complete("", 10).is_empty());
    }

    #[test]
    fn parse_errors_surface() {
        let sys = tiny_system();
        assert!(sys.query("?x bornIn").is_err());
    }

    #[test]
    fn from_parts_wraps_fixture() {
        let store = crate::fixtures::paper_store();
        let rules = crate::fixtures::paper_rules(&store);
        let sys = Trinit::from_parts(store, rules);
        let outcome = sys.query("?x bornIn Ulm").unwrap();
        assert_eq!(outcome.answers.len(), 1);
    }

    #[test]
    fn trinit_is_send_and_sync() {
        // The flagship type must stay shareable across threads — the
        // "one system serves many queries" deployment wraps it in an
        // `Arc`. The embedded posting cache uses `Mutex`/`Arc`
        // internally precisely to keep this holding.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trinit>();
        assert_send_sync::<SharedPostingCache>();
    }

    fn tiny_sharded_system(shards: usize) -> Trinit {
        let world = World::generate(WorldConfig::tiny(11));
        let mut builder =
            TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(7));
        builder.options_mut().shards(shards);
        builder.build()
    }

    #[test]
    fn sharded_build_selects_sharded_backend() {
        let sys = tiny_sharded_system(3);
        assert_eq!(sys.shard_count(), 3);
        let sharded = sys.sharded_store().expect("sharded backend");
        assert_eq!(sharded.len(), sys.stats().total_triples());
        // Monolithic builds stay monolithic.
        let mono = tiny_system();
        assert_eq!(mono.shard_count(), 1);
        assert!(mono.sharded_store().is_none());
    }

    fn tiny_packed_system() -> Trinit {
        let world = World::generate(WorldConfig::tiny(11));
        let mut builder =
            TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(7));
        builder.options_mut().layout(SegmentLayout::Packed);
        builder.build()
    }

    #[test]
    fn packed_build_answers_match_flat_build() {
        let flat = tiny_system();
        let packed = tiny_packed_system();
        assert!(packed
            .segmented_store()
            .is_some_and(|seg| !seg.base().layout().is_flat()));
        for q in ["?x type person LIMIT 5", "?x type university LIMIT 7"] {
            let a = flat.query(q).unwrap();
            let b = packed.query(q).unwrap();
            assert_eq!(a.answers.len(), b.answers.len(), "{q}");
            for (x, y) in a.answers.iter().zip(&b.answers) {
                assert_eq!(x.key, y.key, "{q}: answer keys differ");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "{q}: scores must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn storage_gauges_surface_in_snapshot() {
        let flat = tiny_system();
        let packed = tiny_packed_system();
        for sys in [&flat, &packed] {
            let j = sys.metrics_snapshot();
            assert!(j.contains("\"index_bytes\":"), "{j}");
            assert!(j.contains("\"bytes_per_triple\":"), "{j}");
            assert!(sys.registry().gauge(Gauge::IndexBytes) > 0);
            assert!(sys.registry().gauge(Gauge::BytesPerTriple) > 0);
        }
        assert!(
            packed.registry().gauge(Gauge::IndexBytes)
                < flat.registry().gauge(Gauge::IndexBytes),
            "packed layout must shrink index bytes ({} vs {})",
            packed.registry().gauge(Gauge::IndexBytes),
            flat.registry().gauge(Gauge::IndexBytes)
        );
    }

    #[test]
    fn sharded_system_answers_match_monolith() {
        let mono = tiny_system();
        let sharded = tiny_sharded_system(4);
        // Same world, same mined rules, same queries.
        assert_eq!(mono.stats().total_triples(), sharded.stats().total_triples());
        assert_eq!(mono.rules().len(), sharded.rules().len());
        for q in ["?x type person LIMIT 5", "?x type university LIMIT 7"] {
            let a = mono.query(q).unwrap();
            let b = sharded.query(q).unwrap();
            assert_eq!(a.answers.len(), b.answers.len(), "{q}");
            for (x, y) in a.answers.iter().zip(&b.answers) {
                assert!((x.score - y.score).abs() < 1e-9, "{q}: scores differ");
            }
            assert_eq!(b.shard_metrics.len(), 4, "per-shard metrics surface");
            assert!(a.shard_metrics.is_empty());
        }
    }

    #[test]
    fn sharded_routing_covers_every_engine() {
        let mono = tiny_system();
        let sharded = tiny_sharded_system(2);
        for engine in [Engine::Exact, Engine::FullExpansion, Engine::IncrementalTopK] {
            let q1 = mono.parse("?x type person LIMIT 6").unwrap();
            let q2 = sharded.parse("?x type person LIMIT 6").unwrap();
            let a = mono.run(q1, engine);
            let b = sharded.run(q2, engine);
            // Exact and top-k agree across backends; full expansion's
            // answer set is engine-equivalent under the topk budget, so
            // compare the exact subset it must contain.
            if engine != Engine::FullExpansion {
                assert_eq!(a.answers.len(), b.answers.len(), "{engine:?}");
            }
            for x in a.answers.iter().filter(|x| x.derivation.is_exact()) {
                assert!(
                    b.answers.iter().any(|y| y.key == x.key),
                    "{engine:?}: exact answer lost"
                );
            }
        }
    }

    #[test]
    fn run_batch_matches_sequential_runs() {
        for sys in [tiny_system(), tiny_sharded_system(3)] {
            let texts = [
                "?x type person LIMIT 4",
                "?x type university LIMIT 3",
                "?x type person LIMIT 2",
                "?x type city LIMIT 5",
            ];
            let queries: Vec<Query> = texts.iter().map(|t| sys.parse(t).unwrap()).collect();
            let sequential: Vec<_> = texts
                .iter()
                .map(|t| sys.query(t).unwrap().answers)
                .collect();
            let batch = sys.run_batch(queries, Engine::IncrementalTopK);
            assert_eq!(batch.len(), texts.len());
            for (got, want) in batch.iter().zip(&sequential) {
                let got = got.as_ref().expect("no worker panicked");
                assert_eq!(got.completeness, Completeness::Exact);
                assert_eq!(got.answers.len(), want.len());
                for (x, y) in got.answers.iter().zip(want) {
                    assert!((x.score - y.score).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn small_batches_route_through_stealing_with_identical_answers() {
        // Fewer queries than workers: run_batch takes the seed-stealing
        // path (idle workers exist); at or above the worker count it
        // takes the fixed pool. Both must agree with per-query runs —
        // and with each other.
        let sys = tiny_sharded_system(3);
        let texts = ["?x type person LIMIT 4", "?x type university LIMIT 3"];
        let queries: Vec<Query> = texts.iter().map(|t| sys.parse(t).unwrap()).collect();
        let sequential: Vec<_> = texts.iter().map(|t| sys.query(t).unwrap().answers).collect();
        let small = sys.run_batch(queries.clone(), Engine::IncrementalTopK);
        let explicit = sys.run_batch_stealing(queries, Engine::IncrementalTopK, 3);
        for (got, want) in small.iter().chain(&explicit).zip(sequential.iter().cycle()) {
            let got = got.as_ref().expect("no worker panicked");
            assert_eq!(got.answers.len(), want.len());
            for (x, y) in got.answers.iter().zip(want) {
                assert!((x.score - y.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sharded_explain_and_suggest_resolve_global_ids() {
        let sharded = tiny_sharded_system(3);
        let outcome = sharded.query("?x type person LIMIT 3").unwrap();
        assert!(!outcome.answers.is_empty());
        let explanation = sharded.explain(&outcome, 0).expect("explanation");
        assert!(!explanation.answer_line.is_empty());
        assert!(
            !explanation.kg_triples.is_empty() || !explanation.xkg_triples.is_empty(),
            "derivation triples must render"
        );
        // The report and suggestions must not panic on sharded outcomes.
        let report = sharded.processing_report(&outcome);
        assert!(report.contains("internal processing steps"));
        let _ = sharded.suggest(&outcome);
        // Completion works off the shared dictionary.
        assert!(!sharded.complete("", 10).is_empty());
    }

    #[test]
    fn sharded_system_posting_caches_are_per_shard() {
        let mut sys = tiny_sharded_system(2);
        assert!(sys.shard_posting_caches().is_none());
        sys.enable_posting_cache(32);
        let caches = sys.shard_posting_caches().expect("per-shard caches");
        assert_eq!(caches.len(), 2);
        assert!(sys.posting_cache().is_none(), "single-store tier unused");
        let q = "?x type person LIMIT 4";
        let cold = sys.query(q).unwrap();
        let warm = sys.query(q).unwrap();
        assert!(
            warm.metrics.shared_cache_hits > cold.metrics.shared_cache_hits,
            "repeat query must hit shard caches: {:?} vs {:?}",
            warm.metrics,
            cold.metrics
        );
        for (a, b) in cold.answers.iter().zip(&warm.answers) {
            assert_eq!(a.key, b.key);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn system_level_posting_cache_serves_repeated_queries() {
        let store = crate::fixtures::paper_store();
        let rules = crate::fixtures::paper_rules(&store);
        let mut sys = Trinit::from_parts(store, rules);
        let q = "AlbertEinstein affiliation ?x LIMIT 5";
        // Without the cache enabled, repeated queries share nothing.
        let plain = sys.query(q).unwrap();
        assert_eq!(sys.query(q).unwrap().metrics.shared_cache_hits, 0);
        assert!(sys.posting_cache().is_none());

        sys.enable_posting_cache(64);
        let cold = sys.query(q).unwrap();
        assert_eq!(cold.metrics.shared_cache_hits, 0);
        let warm = sys.query(q).unwrap();
        assert!(warm.metrics.shared_cache_hits > 0);
        let stats = sys.posting_cache().unwrap().stats();
        assert!(stats.hits > 0 && stats.misses > 0);
        // Answers are cache-invisible.
        assert_eq!(plain.answers.len(), warm.answers.len());
        for (a, b) in plain.answers.iter().zip(&warm.answers) {
            assert_eq!(a.key, b.key);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    const BASE_FACTS: &[(&str, &str, &str)] = &[
        ("ann", "likes", "tea"),
        ("bob", "likes", "tea"),
        ("cal", "likes", "ice"),
    ];
    const DELTA_FACTS: &[(&str, &str, &str)] =
        &[("dan", "likes", "tea"), ("eve", "likes", "soda")];

    fn kg_builder(rows: &[(&str, &str, &str)]) -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for (s, p, o) in rows {
            b.add_kg_resources(s, p, o);
        }
        b
    }

    fn add_delta(b: &mut XkgBuilder) {
        for (s, p, o) in DELTA_FACTS {
            b.add_kg_resources(s, p, o);
        }
    }

    /// Answers rendered by display name — term ids are not comparable
    /// across independently interned systems, names and scores are.
    fn named_answers(sys: &Trinit, outcome: &QueryOutcome) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = outcome
            .answers
            .iter()
            .map(|a| {
                let name = a
                    .key
                    .iter()
                    .filter_map(|(_, t)| *t)
                    .map(|t| sys.store().display_term(t))
                    .collect::<Vec<_>>()
                    .join(",");
                (name, a.score)
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn assert_named_answers_eq(got: &[(String, f64)], want: &[(String, f64)]) {
        assert_eq!(got.len(), want.len(), "{got:?} vs {want:?}");
        for ((gn, gs), (wn, ws)) in got.iter().zip(want) {
            assert_eq!(gn, wn);
            assert!((gs - ws).abs() < 1e-9, "{gn}: {gs} vs {ws}");
        }
    }

    /// The cache-staleness regression pinned at the system level: a
    /// posting cache warmed before `ingest` must not serve pre-ingest
    /// lists afterwards — post-ingest answers equal a from-scratch
    /// rebuild on both backends.
    #[test]
    fn ingest_then_query_matches_fresh_rebuild() {
        let all: Vec<_> = BASE_FACTS.iter().chain(DELTA_FACTS).copied().collect();
        let fresh = Trinit::from_parts(kg_builder(&all).build(), RuleSet::new());
        let q = "?p likes tea LIMIT 10";
        let want = fresh.query(q).unwrap();
        assert_eq!(want.answers.len(), 3);
        let want = named_answers(&fresh, &want);

        let mut mono = Trinit::from_parts(kg_builder(BASE_FACTS).build(), RuleSet::new());
        mono.enable_posting_cache(64);
        assert_eq!(mono.query(q).unwrap().answers.len(), 2);
        assert_eq!(mono.query(q).unwrap().answers.len(), 2); // warm the cache
        let appended = mono.ingest(add_delta);
        assert_eq!(appended, 2);
        assert!(mono.has_delta());
        assert_eq!(mono.generation(), 1);
        let got = mono.query(q).unwrap();
        assert_named_answers_eq(&named_answers(&mono, &got), &want);

        let mut sharded = Trinit::from_sharded_parts(
            ShardedStore::build(kg_builder(BASE_FACTS), 3),
            RuleSet::new(),
        );
        sharded.enable_posting_cache(32);
        assert_eq!(sharded.query(q).unwrap().answers.len(), 2); // warm shard caches
        assert_eq!(sharded.ingest(add_delta), 2);
        assert!(sharded.has_delta());
        let got = sharded.query(q).unwrap();
        assert_named_answers_eq(&named_answers(&sharded, &got), &want);
    }

    /// The semi-naive delta question: before any ingest it is exactly
    /// empty; after one it surfaces only answers that use the fresh
    /// facts (dan), not the pre-existing ones (ann, bob).
    #[test]
    fn answers_introduced_by_surfaces_only_fresh_answers() {
        let systems = [
            Trinit::from_parts(kg_builder(BASE_FACTS).build(), RuleSet::new()),
            Trinit::from_sharded_parts(
                ShardedStore::build(kg_builder(BASE_FACTS), 3),
                RuleSet::new(),
            ),
        ];
        for mut sys in systems {
            let q = sys.parse("?p likes tea LIMIT 10").unwrap();
            let none = sys.answers_introduced_by(q);
            assert!(none.answers.is_empty(), "no delta, no introduced answers");
            assert!(matches!(none.completeness, Completeness::Exact));

            assert_eq!(sys.ingest(add_delta), 2);
            let q = sys.parse("?p likes tea LIMIT 10").unwrap();
            let introduced = sys.answers_introduced_by(q);
            let names: Vec<String> = named_answers(&sys, &introduced)
                .into_iter()
                .map(|(n, _)| n)
                .collect();
            assert_eq!(names, ["dan"], "only the fresh answer surfaces");
        }
    }

    /// Compacting re-freezes the delta without changing answers, and
    /// explanations resolve delta evidence both before and after.
    #[test]
    fn compact_preserves_answers_and_explains_delta_evidence() {
        let mut sys = Trinit::from_parts(kg_builder(BASE_FACTS).build(), RuleSet::new());
        assert_eq!(sys.ingest(add_delta), 2);
        let q = "?p likes soda LIMIT 5";
        let before = sys.query(q).unwrap();
        assert_eq!(before.answers.len(), 1);
        let e = sys.explain(&before, 0).expect("explain a delta answer");
        assert!(e.answer_line.contains("eve"), "{}", e.answer_line);
        assert!(!e.kg_triples.is_empty(), "delta KG evidence renders");
        let before = named_answers(&sys, &before);

        sys.compact();
        assert!(!sys.has_delta());
        assert_eq!(sys.generation(), 2);
        let after = sys.query(q).unwrap();
        let explained = sys.explain(&after, 0).expect("explain after compact");
        assert!(explained.answer_line.contains("eve"));
        assert_named_answers_eq(&named_answers(&sys, &after), &before);

        // Sharded compaction folds delta and pending absorbs the same way.
        let mut sharded = Trinit::from_sharded_parts(
            ShardedStore::build(kg_builder(BASE_FACTS), 2),
            RuleSet::new(),
        );
        assert_eq!(sharded.ingest(add_delta), 2);
        let before = sharded.query(q).unwrap();
        let before = named_answers(&sharded, &before);
        sharded.compact();
        assert!(!sharded.has_delta());
        let after = sharded.query(q).unwrap();
        assert_named_answers_eq(&named_answers(&sharded, &after), &before);
        assert_eq!(sharded.shard_count(), 2, "compaction keeps the topology");
    }
}
