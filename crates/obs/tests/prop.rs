//! Property tests for the histogram core and the trace recorder.
//!
//! Pins the algebra the registry and the schedulers lean on: histogram
//! merge is associative (and order-insensitive), quantiles are
//! monotone in `q`, every bucket's bounds bracket the values mapped
//! into it across the whole `u64` range, and recorder merge-at-join
//! conserves the total recorded-span count no matter how workers
//! interleave.

use proptest::prelude::*;

use trinit_obs::span::SpanRecord;
use trinit_obs::{Histogram, Stage, TraceRecorder};

/// Samples spread across the whole u64 range (bit-shifted so small
/// strategies reach huge magnitudes).
fn wide_samples() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..u64::MAX, 0u32..64), 1..80)
}

fn hist_of(samples: &[(u64, u32)]) -> Histogram {
    let mut h = Histogram::new();
    for &(base, shift) in samples {
        h.record(base >> shift);
    }
    h
}

fn assert_hist_eq(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.sum(), b.sum());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(a.quantile(q), b.quantile(q), "quantile {q} differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c), and merge order never matters.
    #[test]
    fn merge_is_associative(
        xs in wide_samples(),
        ys in wide_samples(),
        zs in wide_samples(),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_hist_eq(&left, &right);

        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_hist_eq(&left, &rev);
    }

    /// quantile(q) is monotone non-decreasing in q, bounded by
    /// min/max, and quantile(1.0) is exactly the recorded max.
    #[test]
    fn quantiles_are_monotone_and_bounded(xs in wide_samples()) {
        let h = hist_of(&xs);
        let qs = [0.0, 0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999, 1.0];
        let mut prev = 0u64;
        for q in qs {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q})={v} < previous {prev}");
            assert!(v <= h.max());
            prev = v;
        }
        assert_eq!(h.quantile(1.0), h.max());
        assert!(h.quantile(0.0) <= h.max());
    }

    /// Every recorded value lies within the bounds of the bucket the
    /// histogram placed it in, across the whole u64 range, and the
    /// bucket's relative width never exceeds 1/64.
    #[test]
    fn bucket_bounds_bracket_all_values(xs in wide_samples()) {
        for &(base, shift) in &xs {
            let v = base >> shift;
            let mut h = Histogram::new();
            h.record(v);
            // The single occupied bucket must bracket v: quantile(1.0)
            // returns max (=v), and some bucket's bounds contain it.
            assert_eq!(h.quantile(1.0), v);
            let mut found = false;
            for i in 0..trinit_obs::hist::BUCKETS {
                if Histogram::bucket_low(i) <= v && v <= Histogram::bucket_high(i) {
                    found = true;
                    if v >= 64 && Histogram::bucket_high(i) != u64::MAX {
                        let width = Histogram::bucket_high(i) - Histogram::bucket_low(i);
                        assert!(
                            (width as f64) <= Histogram::bucket_low(i) as f64 / 64.0 + 1.0,
                            "bucket {i} too wide for {v}"
                        );
                    }
                    break;
                }
            }
            assert!(found, "no bucket brackets {v}");
        }
    }

    /// Worker-local recorders merged at join conserve the total
    /// recorded-span count (survivors + dropped) under any split of
    /// spans across workers and any ring capacity.
    #[test]
    fn recorder_merge_conserves_samples(
        capacity in 1usize..32,
        worker_loads in proptest::collection::vec(0usize..50, 1..8),
    ) {
        let base = TraceRecorder::with_capacity(capacity);
        let mut joined = base.fork();
        let mut total = 0u64;
        for (w, &load) in worker_loads.iter().enumerate() {
            let mut local = base.fork();
            for i in 0..load {
                local.record_span(SpanRecord {
                    stage: Stage::SeedTask,
                    detail: w as u32,
                    start_ns: i as u64,
                    dur_ns: 1,
                });
            }
            total += local.recorded();
            joined.merge(&local);
        }
        assert_eq!(joined.recorded(), total);
        let trace = joined.finish();
        assert_eq!(trace.recorded(), total);
        assert!(trace.spans.len() <= capacity);
    }
}
