//! Log-linear latency histograms (HdrHistogram-shaped).
//!
//! Values are `u64` (nanoseconds by convention). The bucket layout is
//! log-linear with 64 sub-buckets per power of two: values below 64
//! are recorded exactly (one bucket per value), and every larger value
//! lands in a bucket whose width is `2^(group-1)` — a guaranteed
//! relative error of at most 1/64 (~1.6%) on any quantile. The whole
//! histogram is a fixed 3776-slot count array, so recording is O(1)
//! with no allocation after construction, and two histograms merge by
//! element-wise addition.

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of two.
const SUB_BITS: u32 = 6;
/// Sub-buckets per group.
const SUBS: usize = 1 << SUB_BITS;
/// Number of log groups: group 0 is exact (`v < 64`), groups 1..=58
/// cover the most-significant-bit range 6..=63 (all of `u64`).
const GROUPS: usize = 59;
/// Total bucket count.
pub const BUCKETS: usize = GROUPS * SUBS;

/// A mergeable log-linear histogram of `u64` samples.
///
/// Tracks exact `count`, saturating `sum`, exact `min`/`max`, and
/// bucketed counts answering quantile queries to within one bucket
/// (≤ 1/64 relative error above 64, exact below).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value. Exact below 64; log-linear above.
    fn bucket_index(v: u64) -> usize {
        if v < SUBS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as usize; // 6..=63
        let group = msb - (SUB_BITS as usize - 1); // 1..=58
        let sub = ((v >> (msb - SUB_BITS as usize)) & (SUBS as u64 - 1)) as usize;
        group * SUBS + sub
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_low(i: usize) -> u64 {
        let group = i / SUBS;
        let sub = (i % SUBS) as u64;
        if group == 0 {
            sub
        } else {
            (SUBS as u64 + sub) << (group - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (saturates at `u64::MAX`).
    pub fn bucket_high(i: usize) -> u64 {
        if i + 1 >= BUCKETS {
            u64::MAX
        } else {
            Self::bucket_low(i + 1) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = Self::bucket_index(v);
        self.counts[i] = self.counts[i].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold `other` into `self` (element-wise; saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest sample,
    /// clamped to the recorded maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen = seen.saturating_add(c);
            if seen >= target {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Fixed quantile summary as a JSON object:
    /// `{"count":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,"p999":..}`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.count,
            self.min(),
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sixty_four() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for v in 0..64u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_low(v as usize), v);
            assert_eq!(Histogram::bucket_high(v as usize), v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn bucket_bounds_bracket_the_value() {
        for &v in &[
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_low(i) <= v, "low({i}) > {v}");
            assert!(v <= Histogram::bucket_high(i), "high({i}) < {v}");
        }
    }

    #[test]
    fn last_bucket_holds_u64_max() {
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_within_one_sixty_fourth() {
        let mut v = 64u64;
        while v < u64::MAX / 3 {
            let i = Histogram::bucket_index(v);
            let err = Histogram::bucket_high(i) - Histogram::bucket_low(i);
            assert!(
                (err as f64) <= Histogram::bucket_low(i) as f64 / 64.0 + 1.0,
                "bucket {i} too wide for {v}"
            );
            v = v.saturating_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // 1/64 relative error tolerance.
        let p50 = h.quantile(0.5);
        assert!((490..=520).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((980..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            both.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 5);
            both.record(v * 13 + 5);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn summary_json_shape() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let j = h.summary_json();
        for key in ["count", "min", "max", "mean", "p50", "p90", "p99", "p999"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
    }
}
