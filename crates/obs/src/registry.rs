//! Process-wide metrics registry: atomic counters, gauges, and
//! stripe-sharded latency histograms.
//!
//! One [`MetricsRegistry`] lives behind the engine for the life of the
//! process. Counters and gauges are single relaxed atomics; histograms
//! are sharded across mutex stripes picked by a thread-local stripe id
//! so concurrent recorders almost never contend. [`snapshot`]
//! (MetricsRegistry::snapshot) merges everything into one JSON
//! document: counters, gauges, the cache tally, and p50/p90/p99/p999
//! summaries of the query-wall and per-stage histograms.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::hist::Histogram;
use crate::span::{QueryTrace, Stage};

/// Monotone process-wide event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Queries executed (any engine, any backend).
    Queries,
    /// Answers returned across all queries.
    Answers,
    /// Queries that completed `Completeness::Exact`.
    CompletenessExact,
    /// Queries that completed `Completeness::Approx`.
    CompletenessApprox,
    /// Queries that completed `Completeness::Truncated`.
    CompletenessTruncated,
    /// Queries that failed (worker panic or other execution error).
    QueryFailures,
    /// Delta ingest batches applied.
    IngestBatches,
    /// Triples ingested across all batches.
    IngestedTriples,
    /// Store compactions performed.
    Compactions,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 9;

    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Queries,
        Counter::Answers,
        Counter::CompletenessExact,
        Counter::CompletenessApprox,
        Counter::CompletenessTruncated,
        Counter::QueryFailures,
        Counter::IngestBatches,
        Counter::IngestedTriples,
        Counter::Compactions,
    ];

    /// Dense index (position in [`Counter::ALL`]).
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in the snapshot JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Queries => "queries",
            Counter::Answers => "answers",
            Counter::CompletenessExact => "completeness_exact",
            Counter::CompletenessApprox => "completeness_approx",
            Counter::CompletenessTruncated => "completeness_truncated",
            Counter::QueryFailures => "query_failures",
            Counter::IngestBatches => "ingest_batches",
            Counter::IngestedTriples => "ingested_triples",
            Counter::Compactions => "compactions",
        }
    }
}

/// Last-write-wins process gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Store generation (bumps on ingest/compact).
    StoreGeneration,
    /// Triples currently live in the delta segment.
    DeltaTriples,
    /// Total triples in the store (base + delta).
    StoreTriples,
    /// Heap bytes held by the store's index structures (permutations,
    /// posting strata, and their directories — dictionary and triple
    /// payloads excluded).
    IndexBytes,
    /// Total storage bytes (indexes + dictionary + triple/provenance
    /// payloads) divided by the triple count, rounded to the nearest
    /// whole byte; 0 for an empty store.
    BytesPerTriple,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 5;

    /// Every gauge, in index order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::StoreGeneration,
        Gauge::DeltaTriples,
        Gauge::StoreTriples,
        Gauge::IndexBytes,
        Gauge::BytesPerTriple,
    ];

    /// Dense index (position in [`Gauge::ALL`]).
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in the snapshot JSON.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::StoreGeneration => "store_generation",
            Gauge::DeltaTriples => "delta_triples",
            Gauge::StoreTriples => "store_triples",
            Gauge::IndexBytes => "index_bytes",
            Gauge::BytesPerTriple => "bytes_per_triple",
        }
    }
}

/// A plain shared-cache stat tally (mirror of the query crate's
/// `SharedCacheStats`, kept dependency-free here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTally {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Mutex poisonings recovered as cold restarts.
    pub poison_recoveries: u64,
}

impl CacheTally {
    /// Element-wise sum.
    pub fn add(&mut self, other: CacheTally) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.poison_recoveries += other.poison_recoveries;
    }
}

/// Number of mutex stripes per sharded histogram.
const STRIPES: usize = 8;

/// Stripe id for the calling thread (assigned round-robin once).
fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// A histogram sharded over mutex stripes: threads record into their
/// own stripe (no cross-thread contention in steady state), snapshots
/// merge all stripes.
#[derive(Debug)]
pub struct ShardedHistogram {
    stripes: [Mutex<Histogram>; STRIPES],
}

impl Default for ShardedHistogram {
    fn default() -> ShardedHistogram {
        ShardedHistogram::new()
    }
}

impl ShardedHistogram {
    /// An empty sharded histogram.
    pub fn new() -> ShardedHistogram {
        ShardedHistogram { stripes: std::array::from_fn(|_| Mutex::new(Histogram::new())) }
    }

    /// Record one sample into the calling thread's stripe.
    pub fn record(&self, v: u64) {
        let mut h = match self.stripes[stripe_id()].lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        h.record(v);
    }

    /// Merge every stripe into one histogram.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for s in &self.stripes {
            let h = match s.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            out.merge(&h);
        }
        out
    }
}

/// The process-wide registry: counters, gauges, the folded cache
/// tally, a query-wall histogram, and one histogram per [`Stage`].
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    cache: [AtomicU64; 4],
    query_wall: ShardedHistogram,
    stages: [ShardedHistogram; Stage::COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            cache: std::array::from_fn(|_| AtomicU64::new(0)),
            query_wall: ShardedHistogram::new(),
            stages: std::array::from_fn(|_| ShardedHistogram::new()),
        }
    }

    /// Increment a counter by one.
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c.idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.idx()].load(Ordering::Relaxed)
    }

    /// Set a gauge.
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        self.gauges[g.idx()].store(v, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.idx()].load(Ordering::Relaxed)
    }

    /// Fold a cache tally (e.g. a dropped session's stats) into the
    /// process-wide cache tally.
    pub fn fold_cache(&self, t: CacheTally) {
        self.cache[0].fetch_add(t.hits, Ordering::Relaxed);
        self.cache[1].fetch_add(t.misses, Ordering::Relaxed);
        self.cache[2].fetch_add(t.evictions, Ordering::Relaxed);
        self.cache[3].fetch_add(t.poison_recoveries, Ordering::Relaxed);
    }

    /// The folded cache tally accumulated so far.
    pub fn cache_tally(&self) -> CacheTally {
        CacheTally {
            hits: self.cache[0].load(Ordering::Relaxed),
            misses: self.cache[1].load(Ordering::Relaxed),
            evictions: self.cache[2].load(Ordering::Relaxed),
            poison_recoveries: self.cache[3].load(Ordering::Relaxed),
        }
    }

    /// Record one query's wall time.
    pub fn record_query_wall(&self, ns: u64) {
        self.query_wall.record(ns);
    }

    /// Merged query-wall histogram.
    pub fn query_wall(&self) -> Histogram {
        self.query_wall.merged()
    }

    /// Record a sample into one stage's histogram.
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stages[stage.idx()].record(ns);
    }

    /// Merged histogram for one stage.
    pub fn stage(&self, stage: Stage) -> Histogram {
        self.stages[stage.idx()].merged()
    }

    /// Fold every span of a finished trace into the per-stage
    /// histograms (point events contribute zero-duration samples, so
    /// stage counts stay meaningful).
    pub fn record_trace(&self, trace: &QueryTrace) {
        for span in &trace.spans {
            self.record_stage(span.stage, span.dur_ns);
        }
    }

    /// Serialize the whole registry to JSON: counters, gauges, the
    /// cache tally (folded + the caller-supplied live stats), the
    /// query-wall summary, and a summary per non-empty stage.
    pub fn snapshot(&self, live_cache: CacheTally) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.get(*c)));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", g.name(), self.gauge(*g)));
        }
        let mut cache = self.cache_tally();
        cache.add(live_cache);
        out.push_str(&format!(
            "}},\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"poison_recoveries\":{}}}",
            cache.hits, cache.misses, cache.evictions, cache.poison_recoveries
        ));
        out.push_str(&format!(",\"query_wall_ns\":{}", self.query_wall().summary_json()));
        out.push_str(",\"stages_ns\":{");
        let mut first = true;
        for s in Stage::ALL {
            let h = self.stage(s);
            if h.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", s.name(), h.summary_json()));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    #[test]
    fn counter_all_is_exhaustive_with_unique_names() {
        for c in Counter::ALL {
            // Compile-breaks when a variant is added without updating ALL.
            match c {
                Counter::Queries
                | Counter::Answers
                | Counter::CompletenessExact
                | Counter::CompletenessApprox
                | Counter::CompletenessTruncated
                | Counter::QueryFailures
                | Counter::IngestBatches
                | Counter::IngestedTriples
                | Counter::Compactions => {}
            }
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
    }

    #[test]
    fn gauge_all_is_exhaustive_with_unique_names() {
        for g in Gauge::ALL {
            match g {
                Gauge::StoreGeneration
                | Gauge::DeltaTriples
                | Gauge::StoreTriples
                | Gauge::IndexBytes
                | Gauge::BytesPerTriple => {}
            }
        }
        let mut names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Gauge::COUNT);
    }

    #[test]
    fn snapshot_contains_every_counter_gauge_and_cache_field() {
        let r = MetricsRegistry::new();
        r.incr(Counter::Queries);
        r.record_query_wall(1234);
        let j = r.snapshot(CacheTally { hits: 5, misses: 3, evictions: 1, poison_recoveries: 0 });
        for c in Counter::ALL {
            assert!(j.contains(&format!("\"{}\":", c.name())), "missing {} in {j}", c.name());
        }
        for g in Gauge::ALL {
            assert!(j.contains(&format!("\"{}\":", g.name())), "missing {} in {j}", g.name());
        }
        for key in ["hits", "misses", "evictions", "poison_recoveries", "query_wall_ns", "stages_ns"] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
        assert!(j.contains("\"hits\":5"));
    }

    #[test]
    fn fold_cache_accumulates_and_snapshot_adds_live() {
        let r = MetricsRegistry::new();
        r.fold_cache(CacheTally { hits: 2, misses: 1, evictions: 0, poison_recoveries: 1 });
        r.fold_cache(CacheTally { hits: 3, misses: 0, evictions: 2, poison_recoveries: 0 });
        let t = r.cache_tally();
        assert_eq!((t.hits, t.misses, t.evictions, t.poison_recoveries), (5, 1, 2, 1));
        let j = r.snapshot(CacheTally { hits: 10, misses: 0, evictions: 0, poison_recoveries: 0 });
        assert!(j.contains("\"hits\":15"), "{j}");
    }

    #[test]
    fn record_trace_feeds_stage_histograms() {
        let r = MetricsRegistry::new();
        let trace = QueryTrace {
            spans: vec![
                SpanRecord { stage: Stage::Variant, detail: 0, start_ns: 0, dur_ns: 100 },
                SpanRecord { stage: Stage::Variant, detail: 1, start_ns: 100, dur_ns: 300 },
                SpanRecord { stage: Stage::Cutoff, detail: 0, start_ns: 400, dur_ns: 0 },
            ],
            dropped: 0,
        };
        r.record_trace(&trace);
        assert_eq!(r.stage(Stage::Variant).count(), 2);
        assert_eq!(r.stage(Stage::Cutoff).count(), 1);
        assert!(r.stage(Stage::Variant).max() >= 300);
        assert!(r.stage(Stage::Merge).is_empty());
    }

    #[test]
    fn sharded_histogram_merges_across_threads() {
        let h = std::sync::Arc::new(ShardedHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..100u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let m = h.merged();
        assert_eq!(m.count(), 400);
        assert!(m.max() >= 3000);
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<MetricsRegistry>();
    }
}
