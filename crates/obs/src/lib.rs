//! `trinit-obs` — dependency-free observability for the TriniT engine.
//!
//! Three pieces, layered bottom-up so every crate in the workspace can
//! use them:
//!
//! - [`hist`]: log-linear bucketed latency histograms
//!   (HdrHistogram-shaped: fixed-size count arrays, O(1) record,
//!   element-wise merge, p50/p90/p99/p999 quantiles with ≤ 1/64
//!   relative error).
//! - [`span`]: per-query stage spans ([`Stage`], [`SpanRecord`])
//!   captured by a bounded-ring [`TraceRecorder`] and exported as a
//!   [`QueryTrace`] with JSON/flamegraph-style output.
//! - [`registry`]: the process-wide [`MetricsRegistry`] — relaxed
//!   atomic counters/gauges, a folded cache tally, and stripe-sharded
//!   histograms — serialized whole by
//!   [`snapshot`](MetricsRegistry::snapshot).
//!
//! The zero-overhead-when-off guarantee: with [`ObsConfig::off`], the
//! engine threads [`TraceRecorder::off`] through every path — each
//! record site reduces to one branch on a local bool, the monotonic
//! clock is never read, and nothing allocates. See
//! `docs/observability.md` for the span taxonomy and JSON schemas.

#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod span;

pub use hist::Histogram;
pub use registry::{CacheTally, Counter, Gauge, MetricsRegistry, ShardedHistogram};
pub use span::{now_ns, QueryTrace, SpanRecord, Stage, TraceRecorder};

/// Instrumentation configuration threaded through the engine (rides in
/// `TopkConfig`, so every execution path sees it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch: when false, recorders are
    /// [`TraceRecorder::off`] and tracing costs one branch per site.
    pub enabled: bool,
    /// Per-query span ring capacity (oldest spans evicted beyond it).
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { enabled: true, trace_capacity: 4096 }
    }
}

impl ObsConfig {
    /// Instrumentation fully disabled (the zero-overhead mode).
    pub fn off() -> ObsConfig {
        ObsConfig { enabled: false, trace_capacity: 0 }
    }

    /// A recorder honoring this config.
    pub fn recorder(&self) -> TraceRecorder {
        if self.enabled {
            TraceRecorder::with_capacity(self.trace_capacity)
        } else {
            TraceRecorder::off()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_builds_disabled_recorder() {
        assert!(!ObsConfig::off().recorder().is_enabled());
        assert!(ObsConfig::default().recorder().is_enabled());
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
