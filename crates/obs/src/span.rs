//! Stage spans and the bounded per-query trace recorder.
//!
//! A [`SpanRecord`] stamps one unit of engine work with a stage label,
//! a small detail word, and monotonic-clock start/duration in
//! nanoseconds (anchored to a process-wide epoch so spans from
//! different threads order on one timeline). A [`TraceRecorder`] is a
//! bounded ring buffer of spans owned by one execution path: workers
//! record locally with no locks and no allocation past the ring's
//! growth, and recorders merge at join points. [`TraceRecorder::off`]
//! is the zero-overhead disabled mode — every record call reduces to
//! one branch and the clock is never read.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide monotonic epoch all span timestamps are relative to.
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic anchor.
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Engine stage a span is attributed to.
///
/// Span semantics by stage:
/// - `Query`, `Variant`, `SeedTask`, `Merge`, `Ingest`, `Compact` are
///   enter/exit spans: `dur_ns` is the exclusive wall time of that
///   unit of work.
/// - `JoinRound` and `Election` are *windowed batches*: to keep clock
///   reads off the per-pull hot path, the recorder stamps one span per
///   64 events covering the window in which they occurred (`detail` =
///   events in the window).
/// - `Threshold` and `Cutoff` are point events (`dur_ns` = 0) marking
///   a termination decision and a budget/approximation cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Whole-query wall span.
    Query,
    /// One relaxation variant's pipeline run (`detail` = variant index).
    Variant,
    /// One per-shard seed task (`detail` = shard index).
    SeedTask,
    /// Cross-shard merge election window (`detail` = elections).
    Election,
    /// Rank-join pull window (`detail` = pulls in the window).
    JoinRound,
    /// Threshold termination decision (point event).
    Threshold,
    /// Budget / approximation cutoff (point event).
    Cutoff,
    /// Cross-shard merge phase of a sharded query.
    Merge,
    /// One delta ingest batch (`detail` = triples ingested).
    Ingest,
    /// One store compaction.
    Compact,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 10;

    /// Every stage, in index order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Query,
        Stage::Variant,
        Stage::SeedTask,
        Stage::Election,
        Stage::JoinRound,
        Stage::Threshold,
        Stage::Cutoff,
        Stage::Merge,
        Stage::Ingest,
        Stage::Compact,
    ];

    /// Dense index (matches position in [`Stage::ALL`]).
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Query => "query",
            Stage::Variant => "variant",
            Stage::SeedTask => "seed_task",
            Stage::Election => "election",
            Stage::JoinRound => "join_round",
            Stage::Threshold => "threshold",
            Stage::Cutoff => "cutoff",
            Stage::Merge => "merge",
            Stage::Ingest => "ingest",
            Stage::Compact => "compact",
        }
    }
}

/// One recorded span: stage, a stage-specific detail word, and
/// monotonic start/duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage this work belongs to.
    pub stage: Stage,
    /// Stage-specific detail (variant index, shard index, event count).
    pub detail: u32,
    /// Start, in nanoseconds since the process anchor.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for point events).
    pub dur_ns: u64,
}

/// Bounded per-query span ring.
///
/// While under capacity, spans append; at capacity the oldest span is
/// overwritten and `dropped` increments, so `len() + dropped()` is
/// always the total number of spans ever recorded — the conservation
/// law the scheduler merge-at-join tests pin.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    enabled: bool,
    capacity: usize,
    spans: Vec<SpanRecord>,
    next: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// An enabled recorder holding at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            enabled: true,
            capacity: capacity.max(1),
            spans: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    /// The disabled recorder: never reads the clock, never allocates,
    /// records nothing. Every call is one branch.
    pub fn off() -> TraceRecorder {
        TraceRecorder {
            enabled: false,
            capacity: 0,
            spans: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// An empty recorder with the same mode/capacity — hand one to
    /// each worker, then [`merge`](TraceRecorder::merge) at join.
    pub fn fork(&self) -> TraceRecorder {
        if self.enabled {
            TraceRecorder::with_capacity(self.capacity)
        } else {
            TraceRecorder::off()
        }
    }

    /// Span start timestamp: `now_ns()` when enabled, 0 when off.
    pub fn start(&self) -> u64 {
        if self.enabled {
            now_ns()
        } else {
            0
        }
    }

    /// Close a span opened with [`start`](TraceRecorder::start).
    pub fn record(&mut self, stage: Stage, detail: u32, start_ns: u64) {
        if !self.enabled {
            return;
        }
        let dur_ns = now_ns().saturating_sub(start_ns);
        self.push(SpanRecord { stage, detail, start_ns, dur_ns });
    }

    /// Record a point event (zero duration, stamped now).
    pub fn event(&mut self, stage: Stage, detail: u32) {
        if !self.enabled {
            return;
        }
        let start_ns = now_ns();
        self.push(SpanRecord { stage, detail, start_ns, dur_ns: 0 });
    }

    /// Record a pre-built span (used by batched windows).
    pub fn record_span(&mut self, span: SpanRecord) {
        if !self.enabled {
            return;
        }
        self.push(span);
    }

    fn push(&mut self, span: SpanRecord) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.next] = span;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total spans ever recorded (`len() + dropped()`): conserved by
    /// [`merge`](TraceRecorder::merge).
    pub fn recorded(&self) -> u64 {
        self.spans.len() as u64 + self.dropped
    }

    /// Fold a worker-local recorder into this one, oldest first.
    /// Conserves `recorded()`: afterwards `self.recorded()` equals the
    /// sum of both sides' prior totals (disabled recorders conserve
    /// nothing by design).
    pub fn merge(&mut self, other: &TraceRecorder) {
        if !self.enabled {
            return;
        }
        for span in other.ordered() {
            self.push(*span);
        }
        self.dropped += other.dropped;
    }

    /// Held spans, oldest first (ring rotation applied).
    fn ordered(&self) -> impl Iterator<Item = &SpanRecord> {
        let (tail, head) = self.spans.split_at(self.next.min(self.spans.len()));
        head.iter().chain(tail.iter())
    }

    /// Consume the recorder into an exported trace (spans oldest
    /// first, sorted by start time for a stable cross-thread timeline).
    pub fn finish(self) -> QueryTrace {
        let mut spans: Vec<SpanRecord> = self.ordered().copied().collect();
        spans.sort_by_key(|s| s.start_ns);
        QueryTrace { spans, dropped: self.dropped }
    }
}

/// An exported per-query trace: the surviving spans (start-ordered)
/// plus the count of spans the bounded ring evicted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Surviving spans, ordered by `start_ns`.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted by the bounded ring.
    pub dropped: u64,
}

impl QueryTrace {
    /// True when no spans were captured.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total spans ever recorded (surviving + dropped).
    pub fn recorded(&self) -> u64 {
        self.spans.len() as u64 + self.dropped
    }

    /// Number of spans for one stage.
    pub fn stage_count(&self, stage: Stage) -> usize {
        self.spans.iter().filter(|s| s.stage == stage).count()
    }

    /// Total duration attributed to one stage.
    pub fn stage_total_ns(&self, stage: Stage) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .fold(0u64, |acc, s| acc.saturating_add(s.dur_ns))
    }

    /// Flamegraph-style JSON export:
    /// `{"dropped":N,"span_count":N,"spans":[{"stage":"variant","detail":0,"start_ns":..,"dur_ns":..},..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 64);
        out.push_str(&format!(
            "{{\"dropped\":{},\"span_count\":{},\"spans\":[",
            self.dropped,
            self.spans.len()
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"detail\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.stage.name(),
                s.detail,
                s.start_ns,
                s.dur_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_records_nothing_and_never_reads_clock() {
        let mut r = TraceRecorder::off();
        assert_eq!(r.start(), 0);
        r.record(Stage::Variant, 0, 0);
        r.event(Stage::Cutoff, 1);
        r.record_span(SpanRecord { stage: Stage::Query, detail: 0, start_ns: 0, dur_ns: 1 });
        assert_eq!(r.recorded(), 0);
        assert!(r.finish().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_dropped() {
        let mut r = TraceRecorder::with_capacity(4);
        for i in 0..10u32 {
            r.record_span(SpanRecord { stage: Stage::JoinRound, detail: i, start_ns: i as u64, dur_ns: 1 });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.recorded(), 10);
        let t = r.finish();
        let details: Vec<u32> = t.spans.iter().map(|s| s.detail).collect();
        assert_eq!(details, vec![6, 7, 8, 9]);
    }

    #[test]
    fn merge_conserves_recorded_total() {
        let mut a = TraceRecorder::with_capacity(8);
        let mut b = a.fork();
        for i in 0..5u32 {
            a.record_span(SpanRecord { stage: Stage::SeedTask, detail: i, start_ns: 10 + i as u64, dur_ns: 2 });
        }
        for i in 0..12u32 {
            b.record_span(SpanRecord { stage: Stage::JoinRound, detail: i, start_ns: i as u64, dur_ns: 1 });
        }
        let expect = a.recorded() + b.recorded();
        a.merge(&b);
        assert_eq!(a.recorded(), expect);
        let t = a.finish();
        assert_eq!(t.recorded(), expect);
    }

    #[test]
    fn finish_orders_spans_by_start() {
        let mut a = TraceRecorder::with_capacity(16);
        a.record_span(SpanRecord { stage: Stage::Merge, detail: 0, start_ns: 50, dur_ns: 1 });
        a.record_span(SpanRecord { stage: Stage::SeedTask, detail: 0, start_ns: 10, dur_ns: 1 });
        a.record_span(SpanRecord { stage: Stage::SeedTask, detail: 1, start_ns: 30, dur_ns: 1 });
        let t = a.finish();
        let starts: Vec<u64> = t.spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![10, 30, 50]);
    }

    #[test]
    fn stage_all_is_exhaustive_and_names_unique() {
        // Compile-breaks if a new stage is added without updating ALL:
        // the match below must list every variant.
        for s in Stage::ALL {
            match s {
                Stage::Query
                | Stage::Variant
                | Stage::SeedTask
                | Stage::Election
                | Stage::JoinRound
                | Stage::Threshold
                | Stage::Cutoff
                | Stage::Merge
                | Stage::Ingest
                | Stage::Compact => {}
            }
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.idx(), i);
        }
    }

    #[test]
    fn trace_json_contains_every_span() {
        let mut r = TraceRecorder::with_capacity(8);
        let t0 = r.start();
        r.record(Stage::Variant, 3, t0);
        r.event(Stage::Threshold, 7);
        let t = r.finish();
        let j = t.to_json();
        assert!(j.contains("\"stage\":\"variant\""));
        assert!(j.contains("\"stage\":\"threshold\""));
        assert!(j.contains("\"span_count\":2"));
        assert!(j.contains("\"dropped\":0"));
    }
}
